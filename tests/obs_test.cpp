/**
 * @file
 * golf::obs tests: histogram bucket semantics, Prometheus/JSON
 * exposition goldens, flight-recorder ring mechanics, contention
 * profile sampling, goroutine profiles, counter monotonicity under
 * fault injection, and the gcWorkers byte-identity contract.
 */
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "chan/channel.hpp"
#include "gc/memstats.hpp"
#include "golf/collector.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using rt::TraceEvent;
using support::kMillisecond;

// ---------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------

TEST(ObsMetricsTest, HistogramBucketBoundariesAreInclusive)
{
    obs::Histogram h({10, 20});
    for (uint64_t v : {5ull, 10ull, 15ull, 20ull, 25ull})
        h.observe(v);
    // Bucket i counts v <= boundaries[i]; the last bucket overflows.
    ASSERT_EQ(h.bucketCounts().size(), 3u);
    EXPECT_EQ(h.bucketCounts()[0], 2u); // 5, 10
    EXPECT_EQ(h.bucketCounts()[1], 2u); // 15, 20
    EXPECT_EQ(h.bucketCounts()[2], 1u); // 25
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 75u);
}

TEST(ObsMetricsTest, ExpBoundariesAreOneTwoFivePerDecade)
{
    const auto b = obs::Histogram::expBoundaries(1000, 10000);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 1000u);
    EXPECT_EQ(b[1], 2000u);
    EXPECT_EQ(b[2], 5000u);
    EXPECT_EQ(b[3], 10000u);
}

TEST(ObsMetricsTest, PromNameSanitizesRuntimeMetricsPaths)
{
    EXPECT_EQ(obs::Registry::promName("/gc/pause:ns"),
              "golf_gc_pause_ns");
    EXPECT_EQ(obs::Registry::promName("/sched/park/chan-receive:ns"),
              "golf_sched_park_chan_receive_ns");
}

TEST(ObsMetricsTest, PrometheusGolden)
{
    obs::Registry reg;
    reg.counter("/a/count:count", "A counter")->add(3);
    reg.gauge("/b/gauge:items", "A gauge")->set(2.5);
    obs::Histogram* h =
        reg.histogram("/c/lat:ns", "A histogram", {10, 100});
    h->observe(5);
    h->observe(50);
    h->observe(500);

    const std::string expected =
        "# HELP golf_a_count_count A counter\n"
        "# TYPE golf_a_count_count counter\n"
        "golf_a_count_count 3\n"
        "# HELP golf_b_gauge_items A gauge\n"
        "# TYPE golf_b_gauge_items gauge\n"
        "golf_b_gauge_items 2.5\n"
        "# HELP golf_c_lat_ns A histogram\n"
        "# TYPE golf_c_lat_ns histogram\n"
        "golf_c_lat_ns_bucket{le=\"10\"} 1\n"
        "golf_c_lat_ns_bucket{le=\"100\"} 2\n"
        "golf_c_lat_ns_bucket{le=\"+Inf\"} 3\n"
        "golf_c_lat_ns_sum 555\n"
        "golf_c_lat_ns_count 3\n";
    EXPECT_EQ(reg.prometheus(), expected);
}

TEST(ObsMetricsTest, SnapshotJsonGolden)
{
    obs::Registry reg;
    reg.counter("/a:count", "a")->add(7);
    reg.gauge("/b:bytes", "b")->set(4096);
    obs::Histogram* h = reg.histogram("/c:ns", "c", {10});
    h->observe(3);
    h->observe(30);

    const std::string expected =
        "{\"metrics\":[\n"
        "  {\"name\":\"/a:count\",\"kind\":\"counter\","
        "\"value\":7},\n"
        "  {\"name\":\"/b:bytes\",\"kind\":\"gauge\","
        "\"value\":4096},\n"
        "  {\"name\":\"/c:ns\",\"kind\":\"histogram\",\"count\":2,"
        "\"sum\":33,\"buckets\":[{\"le\":10,\"count\":1},"
        "{\"le\":\"+Inf\",\"count\":1}]}\n"
        "]}\n";
    EXPECT_EQ(reg.snapshotJson(), expected);
}

// ---------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------

TEST(ObsFlightTest, OverwritesOldestAndCountsDrops)
{
    obs::FlightRecorder f(/*rings=*/2, /*perRingCapacity=*/4);
    for (uint64_t gid = 0; gid < 10; ++gid) {
        f.record(static_cast<support::VTime>(gid * 100),
                 TraceEvent::Park, gid, rt::WaitReason::ChanRecv);
    }
    // gids 0,2,4,6,8 hit ring 0; 1,3,5,7,9 hit ring 1. Capacity 4
    // per ring: the oldest record in each ring is overwritten.
    EXPECT_EQ(f.appended(), 10u);
    EXPECT_EQ(f.size(), 8u);
    EXPECT_EQ(f.dropped(), 2u);

    const auto recs = f.drain();
    ASSERT_EQ(recs.size(), 8u);
    // Drain merges rings back into global append order (gid 2..9
    // here, since each ring evicted its first record).
    for (size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].goroutineId, i + 2);
        EXPECT_EQ(recs[i].t,
                  static_cast<support::VTime>((i + 2) * 100));
        EXPECT_EQ(recs[i].event, TraceEvent::Park);
        EXPECT_EQ(recs[i].reason, rt::WaitReason::ChanRecv);
    }

    f.clear();
    EXPECT_EQ(f.size(), 0u);
    EXPECT_TRUE(f.drain().empty());
}

TEST(ObsFlightTest, DrainFeedsTraceWriters)
{
    obs::FlightRecorder f(1, 8);
    f.record(1000, TraceEvent::Spawn, 1, rt::WaitReason::None);
    f.record(2000, TraceEvent::Park, 1, rt::WaitReason::ChanSend);
    std::ostringstream os;
    rt::writeTraceCsv(os, f.drain());
    EXPECT_EQ(os.str(),
              "t_ns,event,goroutine,reason\n"
              "1000,spawn,1,none\n"
              "2000,park,1,chan send\n");
}

// ---------------------------------------------------------------
// Contention profiles
// ---------------------------------------------------------------

TEST(ObsProfileTest, RateZeroDisablesSampling)
{
    obs::ContentionProfile p(0, /*seed=*/1);
    EXPECT_FALSE(p.enabled());
    p.observe("a;b;c", 1'000'000);
    EXPECT_EQ(p.samples(), 0u);
    EXPECT_TRUE(p.folded().empty());
}

TEST(ObsProfileTest, LongParksAlwaysRecordedAtFullWeight)
{
    obs::ContentionProfile p(1000, /*seed=*/1);
    p.observe("a;b;c", 5000); // d >= rate: always, weight d
    p.observe("a;b;c", 1000);
    EXPECT_EQ(p.samples(), 2u);
    EXPECT_EQ(p.folded(), "a;b;c 6000\n");
}

TEST(ObsProfileTest, ShortParkSamplingIsDeterministicPerSeed)
{
    auto run = [](uint64_t seed) {
        obs::ContentionProfile p(1'000'000, seed);
        for (int i = 0; i < 200; ++i)
            p.observe("s;b;r", 1000); // 0.1% each
        return p.folded();
    };
    EXPECT_EQ(run(7), run(7));
    // Each sampled short park is recorded at weight == rate.
    const std::string f = run(7);
    if (!f.empty())
        EXPECT_EQ(f.find("s;b;r "), 0u);
}

TEST(ObsProfileTest, ParkMetricNamesFollowPathConvention)
{
    EXPECT_EQ(obs::parkMetricName(rt::WaitReason::ChanRecv),
              "/sched/park/chan-receive:ns");
    EXPECT_EQ(obs::parkMetricName(rt::WaitReason::MutexLock),
              "/sched/park/sync-mutex-lock:ns");
    EXPECT_EQ(obs::parkMetricName(rt::WaitReason::GcWait),
              "/sched/park/gc-assist-wait:ns");
}

// ---------------------------------------------------------------
// Runtime integration
// ---------------------------------------------------------------

TEST(ObsRuntimeTest, DisabledObsLeavesRuntimeBare)
{
    rt::Config rc;
    rc.obs.enabled = false;
    Runtime rt(rc);
    EXPECT_EQ(rt.obs(), nullptr);
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[]() -> Go { co_return; });
        co_await rt::yield();
        co_return;
    }, &rt);
    EXPECT_EQ(rt.obs(), nullptr);
    EXPECT_TRUE(rt.tracer().records().empty());
}

TEST(ObsRuntimeTest, EventCountersMatchTracer)
{
    Runtime rt;
    rt.tracer().enable();
    rt.runMain(+[](Runtime* rtp) -> Go {
        for (int i = 0; i < 5; ++i)
            GOLF_GO(*rtp, +[]() -> Go {
                co_await rt::yield();
                co_return;
            });
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_return;
    }, &rt);

    ASSERT_NE(rt.obs(), nullptr);
    const obs::Registry& reg = rt.obs()->registry();
    const obs::Counter* spawned =
        reg.findCounter("/sched/goroutines/spawned:count");
    const obs::Counter* done =
        reg.findCounter("/sched/goroutines/done:count");
    const obs::Counter* cycles = reg.findCounter("/gc/cycles:count");
    ASSERT_NE(spawned, nullptr);
    ASSERT_NE(done, nullptr);
    ASSERT_NE(cycles, nullptr);
    EXPECT_EQ(spawned->value(), rt.tracer().count(TraceEvent::Spawn));
    EXPECT_EQ(done->value(), rt.tracer().count(TraceEvent::Done));
    EXPECT_EQ(cycles->value(),
              rt.tracer().count(TraceEvent::GcStart));

    // The flight recorder saw the same stream as the tracer.
    ASSERT_NE(rt.obs()->flight(), nullptr);
    EXPECT_EQ(rt.obs()->flight()->appended(),
              rt.tracer().records().size());
}

TEST(ObsRuntimeTest, ParkHistogramRecordsSleepDurations)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        (void)rtp;
        co_await rt::sleepFor(3 * kMillisecond);
        co_return;
    }, &rt);
    ASSERT_NE(rt.obs(), nullptr);
    const obs::Histogram* h = rt.obs()->registry().findHistogram(
        obs::parkMetricName(rt::WaitReason::Sleep));
    ASSERT_NE(h, nullptr);
    ASSERT_GE(h->count(), 1u);
    EXPECT_GE(h->sum(), 3u * kMillisecond);
}

TEST(ObsRuntimeTest, GoroutineProfileShowsDeadlockedGoroutine)
{
    rt::Config rc;
    rc.recovery = rt::Recovery::Detect;
    Runtime rt(rc);
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
            co_await chan::recv(c);
            co_return;
        }, makeChan<int>(*rtp, 0));
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_return;
    }, &rt);

    const obs::GoroutineProfile prof =
        obs::collectGoroutineProfile(rt);
    bool sawDeadlocked = false;
    for (const auto& e : prof.entries) {
        if (e.status == rt::GStatus::Deadlocked) {
            sawDeadlocked = true;
            EXPECT_EQ(e.reason, rt::WaitReason::ChanRecv);
            EXPECT_GT(e.parkStartVt, 0u);
        }
    }
    EXPECT_TRUE(sawDeadlocked);
    EXPECT_NE(prof.str().find("goroutine profile: total"),
              std::string::npos);
    EXPECT_NE(prof.str().find("chan receive"), std::string::npos);
    EXPECT_FALSE(prof.folded().empty());
}

/** Pull every counter out of a metrics JSON snapshot. */
std::map<std::string, uint64_t>
countersOf(const std::string& json)
{
    std::map<std::string, uint64_t> out;
    std::istringstream in(json);
    for (std::string line; std::getline(in, line);) {
        const size_t kind = line.find("\"kind\":\"counter\"");
        if (kind == std::string::npos)
            continue;
        const size_t n0 = line.find("\"name\":\"") + 8;
        const size_t n1 = line.find('"', n0);
        const size_t v0 = line.find("\"value\":", kind) + 8;
        out[line.substr(n0, n1 - n0)] = std::strtoull(
            line.c_str() + v0, nullptr, 10);
    }
    return out;
}

TEST(ObsRuntimeTest, CountersAreMonotoneUnderFaultInjection)
{
    rt::Config rc;
    rc.seed = 42;
    rc.faults.enabled = true;
    rc.faults.panicProb = 0.02;
    rc.faults.spuriousWakeupProb = 0.10;
    rc.faults.delayedWakeupProb = 0.10;
    rc.faults.forceGcProb = 0.05;
    Runtime rt(rc);
    std::string mid;
    rt.runMain(
        +[](Runtime* rtp, std::string* midp) -> Go {
            for (int i = 0; i < 30; ++i) {
                GOLF_GO(*rtp, +[]() -> Go {
                    co_await rt::sleepFor(kMillisecond);
                    co_await rt::yield();
                    co_return;
                });
            }
            co_await rt::sleepFor(5 * kMillisecond);
            co_await rt::gcNow();
            *midp = rtp->obs()->metricsJson();
            for (int i = 0; i < 30; ++i) {
                GOLF_GO(*rtp, +[]() -> Go {
                    co_await rt::sleepFor(kMillisecond);
                    co_return;
                });
            }
            co_await rt::sleepFor(5 * kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt, &mid);
    ASSERT_NE(rt.obs(), nullptr);
    const std::string end = rt.obs()->metricsJson();

    const auto midC = countersOf(mid);
    const auto endC = countersOf(end);
    ASSERT_FALSE(midC.empty());
    ASSERT_EQ(midC.size(), endC.size());
    for (const auto& [name, v] : midC) {
        ASSERT_TRUE(endC.count(name)) << name;
        EXPECT_GE(endC.at(name), v) << name << " went backwards";
    }
    // The workload actually progressed between the snapshots.
    EXPECT_GT(endC.at("/sched/goroutines/spawned:count"),
              midC.at("/sched/goroutines/spawned:count"));
}

TEST(ObsRuntimeTest, SnapshotsAreIdenticalAcrossGcWorkers)
{
    const auto& all = microbench::Registry::instance().all();
    ASSERT_FALSE(all.empty());
    const microbench::Pattern& p = all.front();

    auto capture = [&](int workers) {
        microbench::HarnessConfig cfg;
        cfg.procs = 2;
        cfg.seed = 1234;
        cfg.gcWorkers = workers;
        cfg.captureObs = true;
        cfg.obs.blockProfileRateNs = 1000;
        cfg.obs.mutexProfileRateNs = 1000;
        return microbench::runPatternOnce(p, cfg);
    };
    const microbench::RunOutcome w1 = capture(1);
    for (int workers : {2, 4}) {
        const microbench::RunOutcome wn = capture(workers);
        EXPECT_EQ(w1.obsMetricsJson, wn.obsMetricsJson)
            << "gcWorkers=" << workers;
        EXPECT_EQ(w1.obsPrometheus, wn.obsPrometheus)
            << "gcWorkers=" << workers;
        EXPECT_EQ(w1.obsGoroutineProfile, wn.obsGoroutineProfile)
            << "gcWorkers=" << workers;
        EXPECT_EQ(w1.obsBlockProfile, wn.obsBlockProfile)
            << "gcWorkers=" << workers;
        EXPECT_EQ(w1.obsMutexProfile, wn.obsMutexProfile)
            << "gcWorkers=" << workers;
        EXPECT_EQ(w1.obsFlightCsv, wn.obsFlightCsv)
            << "gcWorkers=" << workers;
    }
    EXPECT_FALSE(w1.obsMetricsJson.empty());
    EXPECT_FALSE(w1.obsFlightCsv.empty());
}

TEST(ObsRuntimeTest, GctraceLineFormat)
{
    obs::Config cfg;
    cfg.flightRecords = 0;
    obs::Obs o(cfg, /*procs=*/1, /*seed=*/1);

    detect::CycleStats cs;
    cs.cycle = 3;
    cs.detectionRan = true;
    cs.markIterations = 2;
    cs.gcWorkers = 2;
    cs.modeledStwNs = 500'000; // 0.500 ms
    cs.freedObjects = 120;
    cs.deadlocksFound = 1;
    cs.cancelled = 1;
    gc::MemStats after;
    after.heapAlloc = 3 * 1024 * 1024;

    const std::string line = o.gctraceLine(
        cs, /*heapAllocBefore=*/4 * 1024 * 1024, after,
        /*now=*/1'204'000'000ull);
    EXPECT_EQ(line,
              "gc 3 @1.204s: 4->3 MB, 120 objs freed, 2 mark iters, "
              "0.500 ms pause, 2 workers, golf: 1 deadlocked "
              "1 cancelled 0 reclaimed 0 quarantined");
}

// ---------------------------------------------------------------
// Drop-count exports (golden names)
// ---------------------------------------------------------------

// The flight-recorder overwrite count and the tracer's bounded-ring
// drop count are exported as metrics under these exact names; tools
// scrape them, so a rename is a breaking change.
TEST(ObsDropExportTest, DropCountersExportUnderGoldenNames)
{
    rt::Config rc;
    rc.obs.flightRecords = 8; // tiny ring: overwrites guaranteed
    Runtime rt(rc);
    ASSERT_NE(rt.obs(), nullptr);
    rt.runMain(+[](Runtime* rtp) -> Go {
        for (int i = 0; i < 200; ++i) {
            GOLF_GO(*rtp, +[]() -> Go { co_return; });
            co_await rt::yield();
        }
        co_return;
    }, &rt);

    const std::string json = rt.obs()->metricsJson();
    EXPECT_NE(json.find("\"/obs/flight/dropped:records\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"/sched/trace/dropped:events\""),
              std::string::npos)
        << json;

    // The flight ring saw far more records than its capacity, so the
    // gauge must be live, not a registered-but-never-set zero.
    EXPECT_GT(rt.obs()->flight()->dropped(), 0u);
    const std::string prom = rt.obs()->prometheusText();
    EXPECT_NE(prom.find("golf_obs_flight_dropped_records"),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("golf_sched_trace_dropped_events"),
              std::string::npos)
        << prom;
}

// ---------------------------------------------------------------
// Memory-pressure gauges (golden names)
// ---------------------------------------------------------------

// The /mem/* gauges are scraped by tools and CI dashboards; a rename
// is a breaking change. The span gauges are pool-backend activity
// (legacy runs export them as zeros), so they are part of the
// gcWorkers byte-identity surface but deliberately NOT part of the
// pool-vs-legacy one (see alloc_diff_test.cpp).
TEST(ObsMemGaugeTest, MemGaugesExportUnderGoldenNames)
{
    rt::Config rc;
    rc.heap.softLimitBytes = 32 * 1024 * 1024;
    Runtime rt(rc);
    ASSERT_NE(rt.obs(), nullptr);
    rt.runMain(+[](Runtime* rtp) -> Go {
        for (int i = 0; i < 50; ++i) {
            GOLF_GO(*rtp, +[]() -> Go {
                co_await rt::sleepFor(kMillisecond);
                co_return;
            });
        }
        co_await rt::sleepFor(5 * kMillisecond);
        co_await rt::gcNow();
        co_return;
    }, &rt);

    const std::string json = rt.obs()->metricsJson();
    for (const char* name :
         {"\"/mem/pressure:ratio\"", "\"/mem/limit:bytes\"",
          "\"/mem/spans/retired:spans\"",
          "\"/mem/spans/evicted:spans\"",
          "\"/mem/spans/scavenged:spans\""}) {
        EXPECT_NE(json.find(name), std::string::npos)
            << name << " missing from " << json;
    }
    const std::string prom = rt.obs()->prometheusText();
    for (const char* name :
         {"golf_mem_pressure_ratio", "golf_mem_limit_bytes",
          "golf_mem_spans_retired_spans",
          "golf_mem_spans_evicted_spans",
          "golf_mem_spans_scavenged_spans"}) {
        EXPECT_NE(prom.find(name), std::string::npos)
            << name << " missing from " << prom;
    }
    // The limit gauge must be live, not a registered-but-never-set
    // zero: the configured limit round-trips through the snapshot.
    EXPECT_NE(json.find("\"/mem/limit:bytes\","
                        "\"kind\":\"gauge\",\"value\":33554432"),
              std::string::npos)
        << json;
}

TEST(ObsMemGaugeTest, MemGaugesIdenticalAcrossGcWorkers)
{
    const auto& all = microbench::Registry::instance().all();
    ASSERT_FALSE(all.empty());
    const microbench::Pattern& p = all.front();

    auto capture = [&](int workers) {
        microbench::HarnessConfig cfg;
        cfg.procs = 2;
        cfg.seed = 77;
        cfg.gcWorkers = workers;
        cfg.captureObs = true;
        cfg.heap.softLimitBytes = 8 * 1024 * 1024;
        cfg.mem.scavengeOnGc = true;
        return microbench::runPatternOnce(p, cfg);
    };
    const microbench::RunOutcome w1 = capture(1);
    for (int workers : {2, 4}) {
        const microbench::RunOutcome wn = capture(workers);
        EXPECT_EQ(w1.obsMetricsJson, wn.obsMetricsJson)
            << "gcWorkers=" << workers;
        EXPECT_EQ(w1.obsPrometheus, wn.obsPrometheus)
            << "gcWorkers=" << workers;
        EXPECT_EQ(w1.heapPeak, wn.heapPeak)
            << "gcWorkers=" << workers;
        EXPECT_EQ(w1.memScavenges, wn.memScavenges)
            << "gcWorkers=" << workers;
    }
    EXPECT_NE(w1.obsMetricsJson.find("/mem/pressure:ratio"),
              std::string::npos);
}

} // namespace
} // namespace golf
