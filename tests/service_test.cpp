/**
 * @file
 * Service-simulator tests: the controlled Table 2 service, the
 * production workload (diurnal traffic, leak endpoints, sampling),
 * the Figure 1 redeploy stitching, and the Figure 3 corpus
 * generator's bookkeeping.
 */
#include <gtest/gtest.h>

#include "service/corpus.hpp"
#include "service/metrics.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"

namespace golf::service {
namespace {

using support::kHour;
using support::kSecond;

ServiceConfig
smallService()
{
    ServiceConfig cfg;
    cfg.duration = 4 * kSecond;
    cfg.warmup = kSecond;
    cfg.connections = 8;
    cfg.mapEntries = 2000;
    cfg.seed = 11;
    return cfg;
}

TEST(ControlledServiceTest, HealthyRunServesRequests)
{
    ServiceConfig cfg = smallService();
    auto r = runControlledService(cfg);
    EXPECT_GT(r.requestsServed, 0u);
    EXPECT_GT(r.throughputRps, 0.0);
    EXPECT_GT(r.latency.p50, 0.0);
    EXPECT_LE(r.latency.p50, r.latency.p99);
    EXPECT_LE(r.latency.p99, r.latency.max);
    EXPECT_EQ(r.deadlocksDetected, 0u);
}

TEST(ControlledServiceTest, LeakRateProducesDetections)
{
    ServiceConfig cfg = smallService();
    cfg.leakRate = 0.5;
    auto r = runControlledService(cfg);
    EXPECT_GT(r.deadlocksDetected, 0u);
    // Roughly half the requests leak.
    double rate = static_cast<double>(r.deadlocksDetected) /
                  static_cast<double>(r.requestsServed);
    EXPECT_GT(rate, 0.2);
    EXPECT_LT(rate, 0.8);
}

TEST(ControlledServiceTest, BaselineRetainsLeakedMemory)
{
    ServiceConfig cfg = smallService();
    cfg.duration = 8 * kSecond;
    cfg.mapEntries = 20000; // ~1 MB per request-scope map
    cfg.leakRate = 0.5;
    cfg.gcMode = rt::GcMode::Baseline;
    auto base = runControlledService(cfg);
    cfg.gcMode = rt::GcMode::Golf;
    auto gol = runControlledService(cfg);
    EXPECT_EQ(base.deadlocksDetected, 0u);
    EXPECT_GT(base.heapAlloc, 4 * gol.heapAlloc);
    EXPECT_GT(base.stackInuse, gol.stackInuse);
}

TEST(ControlledServiceTest, GolfPausePerCycleHigher)
{
    ServiceConfig cfg = smallService();
    cfg.gcMode = rt::GcMode::Baseline;
    auto base = runControlledService(cfg);
    cfg.gcMode = rt::GcMode::Golf;
    auto gol = runControlledService(cfg);
    EXPECT_GT(gol.pausePerCycleNs, base.pausePerCycleNs);
}

TEST(ProductionServiceTest, HealthyServiceIsQuiet)
{
    ProductionConfig cfg;
    cfg.duration = kHour / 2;
    cfg.baseRps = 2.0;
    cfg.seed = 3;
    auto r = runProductionService(cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_GT(r.requestsServed, 100u);
    EXPECT_EQ(r.deadlocksDetected, 0u);
    EXPECT_GT(r.p50Samples.count(), 0u);
    EXPECT_GT(r.cpuSamples.count(), 0u);
}

TEST(ProductionServiceTest, LeakEndpointsYieldDedupedErrors)
{
    ProductionConfig cfg;
    cfg.duration = 2 * kHour;
    cfg.baseRps = 3.0;
    cfg.seed = 5;
    cfg.endpoints = {
        {0, 0.05, 0.2},
        {1, 0.05, 0.2},
        {2, 0.05, 0.2},
    };
    auto r = runProductionService(cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_GT(r.deadlocksDetected, 3u);
    // Three buggy code paths: exactly three dedup keys.
    EXPECT_EQ(r.dedupReports, 3u);
}

TEST(ProductionServiceTest, DiurnalTrafficVariesCpu)
{
    ProductionConfig cfg;
    cfg.duration = 24 * kHour;
    cfg.baseRps = 1.0;
    cfg.samplePeriod = kHour;
    cfg.seed = 9;
    auto r = runProductionService(cfg);
    ASSERT_GT(r.cpuSamples.count(), 10u);
    // Peak-hour CPU well above trough-hour CPU.
    EXPECT_GT(r.cpuSamples.max(), 1.5 * r.cpuSamples.min());
}

TEST(Figure1Test, WeekendAccumulationExceedsWeekdays)
{
    TimeSeries s = runFigure1Deployment(77, 7, 0.08);
    ASSERT_FALSE(s.points.empty());
    // The series must span the full week.
    EXPECT_GT(s.points.back().t, 6 * 24 * kHour);
    // Last-day peak (weekend tail) far above the first day's peak.
    double firstDayPeak = 0, tailPeak = 0;
    for (const auto& p : s.points) {
        if (p.t < 24 * kHour)
            firstDayPeak = std::max(firstDayPeak, p.value);
        if (p.t > 5 * 24 * kHour)
            tailPeak = std::max(tailPeak, p.value);
    }
    EXPECT_GT(tailPeak, 1.5 * firstDayPeak);
}

TEST(CorpusTest2, SmallCorpusHasPaperStructure)
{
    CorpusConfig cfg;
    cfg.packages = 200;
    cfg.classes = 80;
    cfg.seed = 13;
    CorpusResult r = runCorpus(cfg);
    EXPECT_EQ(r.packagesRun, 200u);
    EXPECT_GT(r.goleakTotal, 0u);
    EXPECT_GT(r.golfTotal, 0u);
    // GOLF's detections are a strict subset of GOLEAK's.
    EXPECT_LT(r.golfTotal, r.goleakTotal);
    EXPECT_LE(r.golfDedup(), r.goleakDedup());
    for (const auto& c : r.classes)
        EXPECT_LE(c.golfCount, c.goleakCount) << c.classId;
    // GOLF-blind categories never produce GOLF reports.
    for (const auto& c : r.classes) {
        if (c.category == "global" || c.category == "runaway") {
            EXPECT_EQ(c.golfCount, 0u) << c.classId;
        }
        if (c.category == "full" && c.goleakCount > 0) {
            EXPECT_EQ(c.golfCount, c.goleakCount) << c.classId;
        }
    }
}

TEST(CorpusTest2, RatioCurveIsSortedAndBounded)
{
    CorpusConfig cfg;
    cfg.packages = 150;
    cfg.classes = 60;
    cfg.seed = 29;
    CorpusResult r = runCorpus(cfg);
    auto curve = r.ratioCurve();
    for (size_t i = 0; i + 1 < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i + 1]);
    for (double v : curve) {
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(MetricsTest, LatencySummaryOrdering)
{
    support::Samples s;
    for (int i = 1; i <= 1000; ++i)
        s.add(static_cast<double>(i));
    auto sum = LatencySummary::ofMillis(s);
    EXPECT_LE(sum.p50, sum.p90);
    EXPECT_LE(sum.p90, sum.p95);
    EXPECT_LE(sum.p95, sum.p99);
    EXPECT_LE(sum.p99, sum.p999);
    EXPECT_LE(sum.p999, sum.p99995);
    EXPECT_LE(sum.p99995, sum.max);
}

TEST(MetricsTest, SparklineAndCsv)
{
    TimeSeries ts{"x", {}};
    for (int i = 0; i < 50; ++i)
        ts.add(i * kSecond, static_cast<double>(i % 10));
    EXPECT_EQ(ts.sparkline(20).size(), 20u);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 9.0);
}

} // namespace
} // namespace golf::service
