/**
 * @file
 * Failure-injection tests for forced shutdown (Sections 5.4-5.5):
 * a goroutine is deadlocked while parked at each kind of blocking
 * operation, reclaimed, and the runtime state must come out clean —
 * empty waiter queues, empty semtable, recycled goroutine object,
 * reclaimed memory, and no interference with surviving goroutines.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/condvar.hpp"
#include "sync/mutex.hpp"
#include "sync/rwmutex.hpp"
#include "sync/semaphore.hpp"
#include "sync/waitgroup.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

/** Spawn one goroutine parked at the given operation kind on
 *  freshly allocated (and immediately dropped) sync state. */
void
spawnDoomed(Runtime& rt, const std::string& kind)
{
    if (kind == "send") {
        GOLF_GO(rt, +[](Channel<int>* ch) -> Go {
            co_await chan::send(ch, 1);
            co_return;
        }, makeChan<int>(rt, 0));
    } else if (kind == "recv") {
        GOLF_GO(rt, +[](Channel<int>* ch) -> Go {
            co_await chan::recv(ch);
            co_return;
        }, makeChan<int>(rt, 0));
    } else if (kind == "select") {
        GOLF_GO(rt, +[](Channel<int>* a, Channel<int>* b) -> Go {
            co_await chan::select(chan::recvCase(a),
                                  chan::sendCase(b, 9));
            co_return;
        }, makeChan<int>(rt, 0), makeChan<int>(rt, 0));
    } else if (kind == "nilchan") {
        GOLF_GO(rt, +[]() -> Go {
            co_await chan::recv(static_cast<Channel<int>*>(nullptr));
            co_return;
        });
    } else if (kind == "selectforever") {
        GOLF_GO(rt, +[]() -> Go {
            co_await chan::selectForever();
            co_return;
        });
    } else if (kind == "mutex") {
        sync::Mutex* mu = rt.make<sync::Mutex>(rt);
        ASSERT_TRUE(mu->tryLock());
        GOLF_GO(rt, +[](sync::Mutex* m) -> Go {
            co_await m->lock();
            co_return;
        }, mu);
    } else if (kind == "rwmutex_r") {
        sync::RWMutex* mu = rt.make<sync::RWMutex>(rt);
        GOLF_GO(rt, +[](sync::RWMutex* m) -> Go {
            co_await m->lock(); // writer holds forever
            co_await chan::recv(static_cast<Channel<int>*>(nullptr));
            co_return;
        }, mu);
        GOLF_GO(rt, +[](sync::RWMutex* m) -> Go {
            co_await m->rlock();
            co_return;
        }, mu);
    } else if (kind == "waitgroup") {
        sync::WaitGroup* wg = rt.make<sync::WaitGroup>(rt);
        wg->add(1);
        GOLF_GO(rt, +[](sync::WaitGroup* w) -> Go {
            co_await w->wait();
            co_return;
        }, wg);
    } else if (kind == "cond") {
        sync::Mutex* mu = rt.make<sync::Mutex>(rt);
        sync::Cond* cond = rt.make<sync::Cond>(rt, mu);
        GOLF_GO(rt, +[](sync::Cond* c) -> Go {
            co_await c->locker()->lock();
            co_await c->wait();
            c->locker()->unlock();
            co_return;
        }, cond);
    } else if (kind == "semaphore") {
        sync::Semaphore* sem = rt.make<sync::Semaphore>(rt, 0);
        GOLF_GO(rt, +[](sync::Semaphore* s) -> Go {
            co_await s->acquire();
            co_return;
        }, sem);
    } else {
        FAIL() << "unknown kind " << kind;
    }
}

class ReclaimInjectionTest
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ReclaimInjectionTest, ForcedShutdownLeavesRuntimeClean)
{
    const std::string kind = GetParam();
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp, const std::string* kindp) -> Go {
            spawnDoomed(*rtp, *kindp);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow(); // detect
            EXPECT_GE(rtp->collector().reports().total(), 1u)
                << *kindp;
            co_await rt::gcNow(); // reclaim

            // Clean state: no parked goroutines, no semtable
            // residue, the heap emptied.
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u)
                << *kindp;
            EXPECT_EQ(
                rtp->countByStatus(rt::GStatus::PendingReclaim), 0u)
                << *kindp;
            EXPECT_EQ(rtp->semtable().entries(), 0u) << *kindp;
            co_await rt::gcNow();
            EXPECT_EQ(rtp->heap().liveObjects(), 0u) << *kindp;

            // The runtime still works: run a healthy rendezvous
            // through recycled goroutine objects.
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                co_await chan::send(c, 5);
                co_return;
            }, ch.get());
            auto r = co_await chan::recv(ch.get());
            EXPECT_EQ(r.value, 5) << *kindp;
            co_return;
        },
        &rt, &kind);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Waiting), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBlockingKinds, ReclaimInjectionTest,
    ::testing::Values("send", "recv", "select", "nilchan",
                      "selectforever", "mutex", "rwmutex_r",
                      "waitgroup", "cond", "semaphore"),
    [](const auto& info) { return info.param; });

TEST(ReclaimInjectionTest2, ManyMixedLeaksReclaimedTogether)
{
    Runtime rt;
    const std::vector<std::string> kinds{
        "send", "recv", "select", "nilchan", "selectforever",
        "mutex", "waitgroup", "cond", "semaphore"};
    rt.runMain(
        +[](Runtime* rtp, const std::vector<std::string>* ks) -> Go {
            for (const auto& k : *ks)
                spawnDoomed(*rtp, k);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u);
            EXPECT_EQ(rtp->heap().liveObjects(), 0u);
            EXPECT_EQ(rtp->semtable().entries(), 0u);
            co_return;
        },
        &rt, &kinds);
    // One report per doomed goroutine (rwmutex_r excluded: it
    // contributes two, which is why it is not in this list).
    EXPECT_EQ(rt.collector().reports().total(), kinds.size());
}

TEST(ReclaimInjectionTest2, SurvivorsUnaffectedByNeighborReclaim)
{
    // A live goroutine sharing the scheduler with reclaimed ones
    // must proceed undisturbed.
    Runtime rt;
    int delivered = 0;
    rt.runMain(
        +[](Runtime* rtp, int* deliveredp) -> Go {
            gc::Local<Channel<int>> keep(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* c, int* d) -> Go {
                for (int i = 0; i < 5; ++i) {
                    auto r = co_await chan::recv(c);
                    *d += r.value;
                }
                co_return;
            }, keep.get(), deliveredp);
            for (int i = 0; i < 20; ++i)
                spawnDoomed(*rtp, i % 2 ? "send" : "recv");
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_await rt::gcNow();
            for (int i = 0; i < 5; ++i)
                co_await chan::send(keep.get(), 1);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &delivered);
    EXPECT_EQ(delivered, 5);
    EXPECT_EQ(rt.collector().reports().total(), 20u);
}

} // namespace
} // namespace golf
