/**
 * @file
 * golf::mc test suite (ctest label `mc`).
 *
 *  - DFS completeness: the explorer's naive mode enumerates exactly
 *    the hand-counted interleavings of toy programs;
 *  - fingerprint determinism: canonical state hashes are identical
 *    across -gc-workers 1/2 (mark threads must not leak into the
 *    model);
 *  - DPOR soundness: the reduced exploration finds every deadlock
 *    the naive exploration finds, including a seeded leak that only
 *    manifests under a non-default schedule;
 *  - minimal-trace minimality: the mined schedule fails and no
 *    strict prefix of it fails;
 *  - metrics golden names: the /mc/ counters appear in both the JSON
 *    snapshot and the Prometheus rendering;
 *  - trace round-trip: writeTrace/parseTrace is lossless and rejects
 *    malformed input.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "gc/heap.hpp"
#include "gc/marker.hpp"
#include "mc/mc.hpp"
#include "microbench/patterns_common.hpp"
#include "microbench/registry.hpp"
#include "obs/metrics.hpp"
#include "race/annotate.hpp"

namespace golf {
namespace {

using microbench::Pattern;
using microbench::PatternCtx;

// ---------------------------------------------------------------------
// Toy programs with hand-countable choice trees.

rt::Go
oneSliceChild()
{
    co_return; // One slice: spawn -> run -> done.
}

rt::Go
twoSliceChild()
{
    co_await rt::yield(); // Two slices: the yield splits the body.
    co_return;
}

/** Three independent one-slice children: 3! = 6 interleavings. */
rt::Go
toy3x1(PatternCtx* ctx)
{
    GOLF_GO(*ctx->rt, oneSliceChild);
    GOLF_GO(*ctx->rt, oneSliceChild);
    GOLF_GO(*ctx->rt, oneSliceChild);
    co_return;
}

/** Three independent two-slice children: 6!/(2!2!2!) = 90
 *  interleavings of the six slices. */
rt::Go
toy3x2(PatternCtx* ctx)
{
    GOLF_GO(*ctx->rt, twoSliceChild);
    GOLF_GO(*ctx->rt, twoSliceChild);
    GOLF_GO(*ctx->rt, twoSliceChild);
    co_return;
}

/**
 * A leak that manifests ONLY under a non-default schedule: the racer
 * publishes a flag and then blocks sending into an unbuffered
 * channel; the gate receives only while the flag is still clear.
 * Default order (gate first) pairs up and terminates; racer-first
 * parks the racer forever. The flag race is annotated, so DPOR must
 * discover the reversal from the footprints alone.
 */
struct RaceState : gc::Object
{
    int flag = 0;
    chan::Channel<int>* ch = nullptr;

    void
    trace(gc::Marker& m) override
    {
        m.mark(ch);
    }

    const char* objectName() const override { return "racestate"; }
};

rt::Go
racerBody(RaceState* st)
{
    race::write(&st->flag, sizeof st->flag, "flag");
    st->flag = 1;
    co_await chan::send(st->ch, 1);
    co_return;
}

rt::Go
gateBody(RaceState* st)
{
    race::read(&st->flag, sizeof st->flag, "flag");
    if (st->flag == 0)
        co_await chan::recv(st->ch);
    co_return;
}

rt::Go
toyScheduleLeak(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<chan::Channel<int>> ch(chan::makeChan<int>(rt, 0));
    gc::Local<RaceState> st(rt.make<RaceState>());
    st->ch = ch.get();
    // Gate first: the default (first-enabled) schedule terminates.
    GOLF_GO(*ctx->rt, gateBody, st.get());
    GOLF_GO_LEAKY(ctx, "toy/schedule-leak:1", racerBody, st.get());
    co_return;
}

/**
 * ABBA: two goroutines acquire two mutexes in opposite order with a
 * yield inside the critical section. Some schedules interleave the
 * acquisitions into a real circular wait (GOLF reports both); others
 * complete cleanly (golf::race still predicts the lock-order cycle).
 * The goodlock cross-check must see the cycle predicted in every
 * execution but confirmed only in the deadlocking ones.
 */
rt::Go
abbaFirst(sync::Mutex* a, sync::Mutex* b)
{
    co_await a->lock();
    co_await rt::yield();
    co_await b->lock();
    b->unlock();
    a->unlock();
    co_return;
}

rt::Go
abbaSecond(sync::Mutex* a, sync::Mutex* b)
{
    co_await b->lock();
    co_await rt::yield();
    co_await a->lock();
    a->unlock();
    b->unlock();
    co_return;
}

/** Two independent ABBA pairs over the same source sites: lock-order
 *  edges are recorded only on *successful* second acquisition, so a
 *  deadlocked pair cannot predict its own cycle — prediction comes
 *  from a pair that completed cleanly, confirmation from a pair that
 *  deadlocked at the same sites in the same execution. */
rt::Go
toyAbba(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::Mutex> a1(rt.make<sync::Mutex>(rt));
    gc::Local<sync::Mutex> b1(rt.make<sync::Mutex>(rt));
    gc::Local<sync::Mutex> a2(rt.make<sync::Mutex>(rt));
    gc::Local<sync::Mutex> b2(rt.make<sync::Mutex>(rt));
    GOLF_GO_LEAKY(ctx, "toy/abba:1", abbaFirst, a1.get(), b1.get());
    GOLF_GO_LEAKY(ctx, "toy/abba:2", abbaSecond, a1.get(), b1.get());
    GOLF_GO_LEAKY(ctx, "toy/abba:3", abbaFirst, a2.get(), b2.get());
    GOLF_GO_LEAKY(ctx, "toy/abba:4", abbaSecond, a2.get(), b2.get());
    co_return;
}

Pattern
toyPattern(const char* name, rt::Go (*body)(PatternCtx*),
           bool correct, std::vector<std::string> leakSites = {})
{
    Pattern p;
    p.name = name;
    p.suite = "toy";
    p.leakSites = std::move(leakSites);
    p.correct = correct;
    p.body = body;
    return p;
}

mc::McConfig
naiveCfg()
{
    mc::McConfig cfg;
    cfg.dpor = false;
    cfg.sleepSets = false;
    cfg.visited = false;
    return cfg;
}

// ---------------------------------------------------------------------

TEST(McCompleteness, ThreeOneSliceChildrenHaveSixInterleavings)
{
    const Pattern p = toyPattern("toy/3x1", toy3x1, true);
    mc::ExploreResult res = mc::explore(p, naiveCfg());
    EXPECT_TRUE(res.complete);
    EXPECT_FALSE(res.foundFailure);
    EXPECT_EQ(res.stats.executions, 6u);
}

TEST(McCompleteness, ThreeTwoSliceChildrenHaveNinetyInterleavings)
{
    const Pattern p = toyPattern("toy/3x2", toy3x2, true);
    mc::ExploreResult res = mc::explore(p, naiveCfg());
    EXPECT_TRUE(res.complete);
    EXPECT_FALSE(res.foundFailure);
    EXPECT_EQ(res.stats.executions, 90u);
}

TEST(McCompleteness, PrunedModesReachTheSameVerdicts)
{
    const Pattern p = toyPattern("toy/3x2", toy3x2, true);
    mc::McConfig cfg; // All prunings on.
    mc::ExploreResult reduced = mc::explore(p, cfg);
    EXPECT_TRUE(reduced.complete);
    EXPECT_FALSE(reduced.foundFailure);
    // Pruning must actually prune independent children...
    EXPECT_LT(reduced.stats.executions, 90u);
    // ...without giving up exhaustiveness of the verdict set.
    mc::ExploreResult naive = mc::explore(p, naiveCfg());
    EXPECT_EQ(naive.foundFailure, reduced.foundFailure);
}

TEST(McFingerprint, IdenticalAcrossGcWorkerCounts)
{
    const Pattern* p =
        microbench::Registry::instance().find("cgo/ex3");
    ASSERT_NE(p, nullptr);
    mc::McConfig one;
    one.gcWorkers = 1;
    mc::McConfig two;
    two.gcWorkers = 2;
    const mc::ExecResult a = mc::runSchedule(*p, one, {});
    const mc::ExecResult b = mc::runSchedule(*p, two, {});
    ASSERT_EQ(a.choices.size(), b.choices.size());
    for (size_t k = 0; k < a.choices.size(); ++k) {
        EXPECT_EQ(a.choices[k].fingerprint, b.choices[k].fingerprint)
            << "fingerprint diverges at choice " << k;
        EXPECT_EQ(a.choices[k].enabled, b.choices[k].enabled);
    }
    EXPECT_EQ(a.verdict, b.verdict);
}

TEST(McFingerprint, DeterministicAcrossRepeatedRuns)
{
    const Pattern* p =
        microbench::Registry::instance().find("cgo/ex3");
    ASSERT_NE(p, nullptr);
    mc::McConfig cfg;
    const mc::ExecResult a = mc::runSchedule(*p, cfg, {});
    const mc::ExecResult b = mc::runSchedule(*p, cfg, {});
    ASSERT_EQ(a.choices.size(), b.choices.size());
    for (size_t k = 0; k < a.choices.size(); ++k)
        EXPECT_EQ(a.choices[k].fingerprint, b.choices[k].fingerprint);
    EXPECT_EQ(a.verdict, b.verdict);
}

TEST(McDpor, FindsScheduleOnlyLeakFromFootprints)
{
    const Pattern p = toyPattern("toy/schedule-leak", toyScheduleLeak,
                                 false, {"toy/schedule-leak:1"});
    // The default schedule terminates cleanly...
    mc::McConfig cfg;
    const mc::ExecResult def = mc::runSchedule(p, cfg, {});
    EXPECT_FALSE(def.verdict.leaky());
    // ...naive DFS finds the racer-first leak...
    mc::ExploreResult naive = mc::explore(p, naiveCfg());
    ASSERT_TRUE(naive.foundFailure);
    // ...and so must DPOR, from the annotated flag race alone.
    mc::ExploreResult reduced = mc::explore(p, cfg);
    ASSERT_TRUE(reduced.foundFailure);
    EXPECT_EQ(naive.failedLabels, reduced.failedLabels);
    EXPECT_FALSE(reduced.minimalSchedule.empty());
}

TEST(McDpor, SoundOnSeededCorpusPatterns)
{
    // Reduced exploration must find every deadlock naive finds on a
    // corpus slice small enough to exhaust both ways.
    const char* names[] = {
        "cgo/ex1",         "cgo/ex2",        "cgo/ex4",
        "cgo/ex5",         "cgo/ex6",        "cockroach/10790",
        "kubernetes/16697", "syncthing/4829",
    };
    for (const char* name : names) {
        const Pattern* p =
            microbench::Registry::instance().find(name);
        ASSERT_NE(p, nullptr) << name;
        ASSERT_FALSE(p->correct) << name;
        mc::McConfig reduced; // keep exploring past failures
        mc::McConfig naive = naiveCfg();
        naive.maxExecutions = 50000;
        mc::ExploreResult rn = mc::explore(*p, naive);
        mc::ExploreResult rr = mc::explore(*p, reduced);
        EXPECT_EQ(rn.foundFailure, rr.foundFailure) << name;
        EXPECT_EQ(rn.failedLabels, rr.failedLabels) << name;
    }
}

TEST(McGoodlock, CycleIsPredictedEverywhereButConfirmedOnlyWhenReal)
{
    const Pattern p = toyPattern(
        "toy/abba", toyAbba, false,
        {"toy/abba:1", "toy/abba:2", "toy/abba:3", "toy/abba:4"});
    mc::McConfig cfg; // keep exploring past failures (exhaustive)
    mc::ExploreResult res = mc::explore(p, cfg);
    EXPECT_TRUE(res.complete);
    // Some interleaving realizes a circular wait...
    ASSERT_TRUE(res.foundFailure);
    EXPECT_FALSE(res.failedLabels.empty());
    // ...and the predicted lock-order cycle is cross-checked against
    // the schedules the explorer actually drove.
    ASSERT_FALSE(res.goodlock.empty());
    uint64_t predicted = 0, confirmed = 0;
    for (const mc::GoodlockEntry& e : res.goodlock) {
        predicted += e.predictedIn;
        confirmed += e.confirmedIn;
    }
    EXPECT_GT(predicted, 0u);
    EXPECT_GT(confirmed, 0u);
    // The clean interleavings predict the cycle without realizing it:
    // that is exactly the goodlock-precision gap the report measures.
    EXPECT_LT(confirmed, predicted);
}

TEST(McMinimality, NoStrictPrefixOfTheMinedScheduleFails)
{
    const Pattern p = toyPattern("toy/schedule-leak", toyScheduleLeak,
                                 false, {"toy/schedule-leak:1"});
    mc::McConfig cfg;
    mc::ExploreResult res = mc::explore(p, cfg);
    ASSERT_TRUE(res.foundFailure);
    ASSERT_FALSE(res.minimalSchedule.empty());
    // The minimal schedule reproduces its recorded verdict...
    const mc::ExecResult full =
        mc::runSchedule(p, cfg, res.minimalSchedule);
    EXPECT_TRUE(full.verdict.leaky());
    EXPECT_EQ(full.verdict, res.minimalVerdict);
    // ...and no strict prefix fails.
    for (size_t len = 0; len < res.minimalSchedule.size(); ++len) {
        mc::Schedule prefix(res.minimalSchedule.begin(),
                            res.minimalSchedule.begin() +
                                static_cast<long>(len));
        const mc::ExecResult r = mc::runSchedule(p, cfg, prefix);
        EXPECT_FALSE(r.verdict.leaky())
            << "strict prefix of length " << len << " already fails";
    }
}

TEST(McMetrics, GoldenNamesInJsonAndPrometheus)
{
    obs::Registry reg;
    mc::registerMetrics(reg);
    const Pattern p = toyPattern("toy/3x1", toy3x1, true);
    mc::McConfig cfg;
    (void)mc::explore(p, cfg, &reg);

    const char* names[] = {
        "/mc/executions:count",      "/mc/states:count",
        "/mc/branches:count",        "/mc/sleepset/pruned:count",
        "/mc/dpor/pruned:count",     "/mc/visited/pruned:count",
    };
    const std::string json = reg.snapshotJson();
    const std::string prom = reg.prometheus();
    for (const char* name : names)
        EXPECT_NE(json.find(name), std::string::npos) << name;
    // Prometheus rendering sanitizes the path but must carry all six
    // mc series.
    EXPECT_NE(prom.find("mc_executions"), std::string::npos) << prom;
    EXPECT_NE(prom.find("mc_states"), std::string::npos);
    EXPECT_NE(prom.find("mc_branches"), std::string::npos);
    EXPECT_NE(prom.find("mc_sleepset_pruned"), std::string::npos);
    EXPECT_NE(prom.find("mc_dpor_pruned"), std::string::npos);
    EXPECT_NE(prom.find("mc_visited_pruned"), std::string::npos);
    // At least one execution must have been accounted.
    EXPECT_EQ(json.find("\"/mc/executions:count\",\"kind\":"
                        "\"counter\",\"value\":0"),
              std::string::npos);
}

TEST(McTrace, RoundTripsLosslessly)
{
    mc::TraceFile t;
    t.pattern = "toy/schedule-leak";
    t.correct = false;
    t.duration = 123 * support::kMillisecond;
    t.patternSeed = 7;
    t.schedule = {4, 2, 9};
    t.enabled = {{2, 4}, {2, 9}, {9, 11}};
    t.verdictCanonical = "toy:1=1|unexpected=0|globalDeadlock=0|"
                         "panicked=0|mainReclaimed=0";
    t.verdictHash = 0xdeadbeefcafef00dull;

    const std::string bytes = mc::writeTrace(t);
    std::istringstream in(bytes);
    mc::TraceFile back;
    std::string err;
    ASSERT_TRUE(mc::parseTrace(in, back, err)) << err;
    EXPECT_EQ(back.pattern, t.pattern);
    EXPECT_EQ(back.correct, t.correct);
    EXPECT_EQ(back.duration, t.duration);
    EXPECT_EQ(back.patternSeed, t.patternSeed);
    EXPECT_EQ(back.schedule, t.schedule);
    EXPECT_EQ(back.enabled, t.enabled);
    EXPECT_EQ(back.verdictCanonical, t.verdictCanonical);
    EXPECT_EQ(back.verdictHash, t.verdictHash);
    // Serialization is canonical: a second write is byte-identical.
    EXPECT_EQ(mc::writeTrace(back), bytes);
}

TEST(McTrace, RejectsMalformedInput)
{
    mc::TraceFile out;
    std::string err;
    {
        std::istringstream in("not a trace\n");
        EXPECT_FALSE(mc::parseTrace(in, out, err));
    }
    {
        std::istringstream in("golf-mc-trace v1\n");
        EXPECT_FALSE(mc::parseTrace(in, out, err)); // no pattern
    }
    {
        std::istringstream in("golf-mc-trace v1\n"
                              "pattern x correct=0\n"
                              "choice 1 5 enabled=5\n"); // gap at 0
        EXPECT_FALSE(mc::parseTrace(in, out, err));
    }
    {
        std::istringstream in("golf-mc-trace v1\n"
                              "pattern x correct=0\n"
                              "bogus line\n");
        EXPECT_FALSE(mc::parseTrace(in, out, err));
    }
}

TEST(McFingerprint, IdenticalAcrossAllocBackends)
{
    // The canonical state hash orders goroutines by allocSeq, never
    // by address, so swapping the span allocator for the legacy
    // per-object backend must not move a single choice point: same
    // enabled sets, same fingerprints, same verdict, on a corpus
    // slice wide enough to cover channels, mutexes and waitgroups.
    const char* names[] = {
        "cgo/ex1",          "cgo/ex2",       "cgo/ex3",
        "cgo/ex4",          "cgo/ex5",       "cgo/ex6",
        "cockroach/10790",  "syncthing/4829",
    };
    for (const char* name : names) {
        const Pattern* p = microbench::Registry::instance().find(name);
        ASSERT_NE(p, nullptr) << name;
        mc::McConfig pool;
        pool.allocBackend = gc::AllocBackend::Pool;
        mc::McConfig legacy;
        legacy.allocBackend = gc::AllocBackend::Legacy;
        const mc::ExecResult a = mc::runSchedule(*p, pool, {});
        const mc::ExecResult b = mc::runSchedule(*p, legacy, {});
        ASSERT_EQ(a.choices.size(), b.choices.size()) << name;
        for (size_t k = 0; k < a.choices.size(); ++k) {
            EXPECT_EQ(a.choices[k].fingerprint,
                      b.choices[k].fingerprint)
                << name << ": fingerprint diverges at choice " << k;
            EXPECT_EQ(a.choices[k].enabled, b.choices[k].enabled)
                << name << ": enabled set diverges at choice " << k;
            EXPECT_EQ(a.choices[k].chosen, b.choices[k].chosen)
                << name << ": pick diverges at choice " << k;
        }
        EXPECT_EQ(a.verdict, b.verdict) << name;
    }
}

TEST(McDpor, VerdictsIdenticalAcrossAllocBackends)
{
    // Full DPOR explorations must walk the same reduced tree under
    // either backend: identical execution/state counts, identical
    // failing-label sets, the identical minimal schedule. Visited-
    // fingerprint pruning makes this sharp — a single backend-
    // dependent fingerprint would change the tree shape.
    const char* names[] = {
        "cgo/ex1",         "cgo/ex4",        "cgo/ex6",
        "cockroach/10790", "kubernetes/16697",
    };
    for (const char* name : names) {
        const Pattern* p = microbench::Registry::instance().find(name);
        ASSERT_NE(p, nullptr) << name;
        mc::McConfig pool;
        pool.allocBackend = gc::AllocBackend::Pool;
        mc::McConfig legacy;
        legacy.allocBackend = gc::AllocBackend::Legacy;
        mc::ExploreResult a = mc::explore(*p, pool);
        mc::ExploreResult b = mc::explore(*p, legacy);
        EXPECT_EQ(a.complete, b.complete) << name;
        EXPECT_EQ(a.foundFailure, b.foundFailure) << name;
        EXPECT_EQ(a.failedLabels, b.failedLabels) << name;
        EXPECT_EQ(a.minimalSchedule, b.minimalSchedule) << name;
        EXPECT_EQ(a.stats.executions, b.stats.executions) << name;
        EXPECT_EQ(a.stats.states, b.stats.states) << name;
        EXPECT_EQ(a.stats.branches, b.stats.branches) << name;
        EXPECT_EQ(a.stats.sleepPruned, b.stats.sleepPruned) << name;
        EXPECT_EQ(a.stats.dporPruned, b.stats.dporPruned) << name;
        EXPECT_EQ(a.stats.visitedPruned, b.stats.visitedPruned)
            << name;
        EXPECT_EQ(a.falsePositiveExecutions, b.falsePositiveExecutions)
            << name;
    }
}

TEST(McVerdict, CanonicalFormIsSortedAndStable)
{
    mc::Verdict v;
    v.detected["b/2:9"] = 2;
    v.detected["a/1:3"] = 1;
    v.unexpected = 1;
    v.globalDeadlock = true;
    EXPECT_EQ(v.canonical(),
              "a/1:3=1;b/2:9=2|unexpected=1|globalDeadlock=1|"
              "panicked=0|mainReclaimed=0");
    EXPECT_TRUE(v.leaky());
    mc::Verdict clean;
    EXPECT_FALSE(clean.leaky());
    EXPECT_NE(v.hash(), clean.hash());
}

} // namespace
} // namespace golf
