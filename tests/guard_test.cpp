/**
 * @file
 * Tests for the guard subsystem (§9): the virtual-time watchdog, the
 * Cancel rung's DeadlockError delivery and its defer/recover
 * observability, cancel-attempt exhaustion, the recovery ladder over
 * the microbench corpus (exact per-seed counts, gcWorkers
 * independence), and resurrection poisoning (false positives healed,
 * true positives silent).
 */
#include <gtest/gtest.h>

#include <string>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "guard/cancel.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "runtime/defer.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/rwmutex.hpp"
#include "sync/waitgroup.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;
using support::kSecond;

// Cross-goroutine probes: runMain is synchronous, so namespace-scope
// state reset at the top of each test is race-free.
std::string g_recoveredMsg;
bool g_sendCompleted = false;
bool g_writerCancelled = false;
bool g_readerAdmitted = false;

Go
blockedSender(Channel<int>* ch)
{
    co_await chan::send(ch, 1);
    g_sendCompleted = true;
    co_return;
}

Go
guardedSender(Channel<int>* ch)
{
    GOLF_DEFER([] {
        if (auto m = rt::recover())
            g_recoveredMsg = *m;
    });
    co_await chan::send(ch, 1);
    g_sendCompleted = true;
    co_return;
}

/** Swallows every cancellation in-body and re-blocks on the same
 *  channel: exercises attempt exhaustion. */
Go
stubbornSender(Channel<int>* ch)
{
    for (;;) {
        try {
            co_await chan::send(ch, 1);
            co_return;
        } catch (const guard::DeadlockError&) {
            // Refuse the hint; park again.
        }
    }
}

// ---------------------------------------------------------------
// Watchdog: off-cycle detection bounded by threshold + poll.
// ---------------------------------------------------------------

TEST(GuardTest, WatchdogForcesOffCycleDetection)
{
    rt::Config cfg;
    cfg.watchdog.enabled = true;
    Runtime rt(cfg);
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            // No rt::gcNow() and a tiny heap: only the watchdog can
            // force a detection pass.
            co_await rt::sleepFor(500 * kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_GE(rt.watchdogTriggers(), 1u);
    ASSERT_EQ(rt.collector().reports().total(), 1u);

    // Detection latency is bounded by threshold + poll interval
    // (plus the safepoint, immediate here), not by heap growth.
    const detect::DeadlockReport& rep =
        rt.collector().reports().all()[0];
    const guard::WatchdogConfig& wd = rt.config().watchdog;
    EXPECT_GE(rep.vtime, wd.blockedThresholdNs);
    EXPECT_LE(rep.vtime,
              wd.blockedThresholdNs + 2 * wd.pollIntervalNs +
                  10 * kMillisecond);
}

TEST(GuardTest, WatchdogDisabledMeansNoOffCycleDetection)
{
    Runtime rt; // watchdog off by default: zero behavior change
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(500 * kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.watchdogTriggers(), 0u);
    EXPECT_EQ(rt.collector().reports().total(), 0u);
}

// ---------------------------------------------------------------
// Cancel rung: delivery, recover(), containment, exhaustion.
// ---------------------------------------------------------------

TEST(GuardTest, CancelObservableViaDeferRecover)
{
    g_recoveredMsg.clear();
    g_sendCompleted = false;
    rt::Config cfg;
    cfg.recovery = rt::Recovery::Cancel;
    Runtime rt(cfg);
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, guardedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            // Let the cancelled goroutine run its recovery.
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.cancelsDelivered(), 1u);
    EXPECT_EQ(rt.cancelDeaths(), 0u);
    EXPECT_FALSE(g_sendCompleted);
    EXPECT_NE(g_recoveredMsg.find("deadlock: cancelled while blocked"),
              std::string::npos)
        << g_recoveredMsg;
    EXPECT_NE(g_recoveredMsg.find("chan send"), std::string::npos)
        << g_recoveredMsg;

    // The delivery is attributed in the report log.
    const detect::ReportLog& log = rt.collector().reports();
    EXPECT_EQ(log.total(), 1u);
    ASSERT_EQ(log.cancels().size(), 1u);
    EXPECT_EQ(log.cancels()[0].reason, rt::WaitReason::ChanSend);
    EXPECT_EQ(log.cancels()[0].attempt, 1);
    // The cancelled goroutine is gone, not Deadlocked or reclaimed.
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Deadlocked), 0u);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::PendingReclaim), 0u);
}

TEST(GuardTest, UnrecoveredCancelIsContained)
{
    g_sendCompleted = false;
    rt::Config cfg;
    cfg.recovery = rt::Recovery::Cancel;
    Runtime rt(cfg);
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    // The goroutine died of an unrecovered DeadlockError; the run
    // itself is fine (containment, like an injected fault).
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.cancelsDelivered(), 1u);
    EXPECT_EQ(rt.cancelDeaths(), 1u);
    EXPECT_FALSE(g_sendCompleted);
}

TEST(GuardTest, CancelExhaustionEscalatesToDeadlocked)
{
    rt::Config cfg;
    cfg.recovery = rt::Recovery::Cancel;
    cfg.guard.cancelAttempts = 1;
    Runtime rt(cfg);
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, stubbornSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow(); // detect + cancel (attempt 1)
            co_await rt::sleepFor(kMillisecond); // re-blocks
            co_await rt::gcNow(); // attempts exhausted: keep it
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.cancelsDelivered(), 1u);
    EXPECT_EQ(rt.cancelDeaths(), 0u);
    // Second detection found it again but the ladder floor (Detect)
    // applied: kept alive, reported once, never re-cancelled.
    EXPECT_EQ(rt.collector().reports().total(), 1u);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Deadlocked), 1u);
}

// ---------------------------------------------------------------
// sync-object cancellation: a cancelled parked writer must roll
// back its waitingWriters_ elevation or readers starve forever.
// ---------------------------------------------------------------

Go
readerHolder(sync::RWMutex* m, Channel<int>* never)
{
    co_await m->rlock();
    co_await chan::recv(never); // deadlocks holding the read lock
    co_return;
}

Go
writerThenReader(sync::RWMutex* m)
{
    try {
        co_await m->lock();
        m->unlock(); // not reached
    } catch (const guard::DeadlockError&) {
        g_writerCancelled = true;
    }
    // After the cancelled write attempt, read admission must still
    // work: the parked writer's pending count was rolled back.
    co_await m->rlock();
    m->runlock();
    g_readerAdmitted = true;
    co_return;
}

TEST(GuardTest, CancelledWriterRollsBackWaitingWriters)
{
    g_writerCancelled = false;
    g_readerAdmitted = false;
    rt::Config cfg;
    cfg.recovery = rt::Recovery::Cancel;
    Runtime rt(cfg);
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::RWMutex* m = rtp->make<sync::RWMutex>(*rtp);
            GOLF_GO(*rtp, readerHolder, m,
                    makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond); // reader locks
            GOLF_GO(*rtp, writerThenReader, m);
            co_await rt::sleepFor(kMillisecond); // writer parks
            co_await rt::gcNow(); // both candidates cancelled
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(g_writerCancelled);
    EXPECT_TRUE(g_readerAdmitted);
    EXPECT_EQ(rt.cancelsDelivered(), 2u);
    EXPECT_EQ(rt.cancelDeaths(), 1u); // readerHolder had no guard
}

// ---------------------------------------------------------------
// Watchdog rescue: a global deadlock becomes a recovered run.
// ---------------------------------------------------------------

Go
rescuedChild(Runtime* rtp, sync::WaitGroup* wg)
{
    Channel<int>* ch = makeChan<int>(*rtp, 0);
    try {
        co_await chan::send(ch, 1); // no receiver will ever come
    } catch (const guard::DeadlockError&) {
    }
    wg->done();
    co_return;
}

TEST(GuardTest, WatchdogRescuesGlobalDeadlock)
{
    rt::Config cfg;
    cfg.watchdog.enabled = true;
    cfg.recovery = rt::Recovery::Cancel;
    Runtime rt(cfg);
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            // Rooted globally so the liveness fixpoint keeps main
            // alive: only the child is a true partial deadlock.
            gc::GlobalRoot<sync::WaitGroup> wg(
                rtp->heap(), rtp->make<sync::WaitGroup>(*rtp));
            wg->add(1);
            GOLF_GO(*rtp, rescuedChild, rtp, wg.get());
            // With no runnable goroutine and no pending timer this
            // wait is Go's fatal global deadlock; the watchdog
            // rescue cancels the child instead and the run finishes.
            co_await wg->wait();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.globalDeadlock);
    EXPECT_GE(rt.watchdogTriggers(), 1u);
    EXPECT_EQ(rt.cancelsDelivered(), 1u);
    EXPECT_EQ(rt.cancelDeaths(), 0u);
}

// ---------------------------------------------------------------
// Resurrection poisoning: a hint-induced false positive is healed
// when the "dead" channel is touched; true positives stay silent.
// ---------------------------------------------------------------

TEST(GuardTest, ResurrectionHealsFalsePositive)
{
    g_sendCompleted = false;
    Runtime rt; // Detect rung: the false positive is kept, poisoned
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::GlobalRoot<Channel<int>> ch(rtp->heap(),
                                            makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, blockedSender, ch.get());
            co_await rt::sleepFor(kMillisecond);
            // A wrong inert hint defeats Listing 4 in the bad
            // direction: the sender is declared deadlocked even
            // though main still uses the channel.
            rtp->collector().hintInertGlobal(ch.get());
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            // Touch the poisoned channel: the tripwire must heal
            // the verdict instead of corrupting the rendezvous.
            chan::RecvResult<int> v =
                co_await chan::recv(ch.get());
            EXPECT_TRUE(v.ok);
            EXPECT_EQ(v.value, 1);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.resurrections(), 1u);
    // The healed sender completed its send and exited normally.
    EXPECT_TRUE(g_sendCompleted);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Deadlocked), 0u);

    const detect::ReportLog& log = rt.collector().reports();
    ASSERT_EQ(log.resurrections().size(), 1u);
    EXPECT_EQ(log.resurrections()[0].op, "chan recv");
}

TEST(GuardTest, TruePositiveNeverResurrects)
{
    rt::Config cfg;
    cfg.recovery = rt::Recovery::Reclaim;
    Runtime rt(cfg);
    rt::RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow(); // detect + stage
            co_await rt::gcNow(); // reclaim
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.collector().reports().total(), 1u);
    EXPECT_EQ(rt.resurrections(), 0u);
}

// ---------------------------------------------------------------
// The ladder over the microbench corpus: exact per-seed counts,
// run-to-run determinism, gcWorkers independence.
// ---------------------------------------------------------------

struct LadderCounts
{
    size_t reports = 0;
    uint64_t cancels = 0;
    uint64_t cancelDeaths = 0;
    uint64_t quarantined = 0;
    uint64_t resurrections = 0;
    int detectedAtLabel = 0;

    bool
    operator==(const LadderCounts& o) const
    {
        return reports == o.reports && cancels == o.cancels &&
               cancelDeaths == o.cancelDeaths &&
               quarantined == o.quarantined &&
               resurrections == o.resurrections &&
               detectedAtLabel == o.detectedAtLabel;
    }
};

LadderCounts
runLadder(const microbench::Pattern& p, rt::Recovery rung,
          int gcWorkers, bool watchdog)
{
    microbench::HarnessConfig hc;
    hc.seed = 7;
    hc.recovery = rung;
    hc.gcWorkers = gcWorkers;
    hc.verifyInvariants = true;
    hc.watchdog.enabled = watchdog;
    microbench::RunOutcome o = microbench::runPatternOnce(p, hc);
    EXPECT_TRUE(o.invariantViolations.empty())
        << p.name << ": " << o.invariantViolations.front();
    EXPECT_FALSE(o.runtimeFailure) << o.failureMessage;
    LadderCounts c;
    c.reports = o.individualReports;
    c.cancels = o.cancelsDelivered;
    c.cancelDeaths = o.cancelDeaths;
    c.quarantined = o.quarantined;
    c.resurrections = o.resurrections;
    for (const auto& [label, n] : o.detectedPerLabel)
        c.detectedAtLabel += n;
    return c;
}

TEST(GuardTest, LadderRungsOnCorpusAreExactAndDeterministic)
{
    const microbench::Pattern* p =
        microbench::Registry::instance().find("cgo/ex1");
    ASSERT_NE(p, nullptr);

    for (rt::Recovery rung :
         {rt::Recovery::Detect, rt::Recovery::Cancel,
          rt::Recovery::Reclaim, rt::Recovery::Quarantine}) {
        SCOPED_TRACE(rt::recoveryName(rung));
        LadderCounts base = runLadder(*p, rung, /*gcWorkers=*/1,
                                      /*watchdog=*/false);
        // cgo/ex1 is deterministic with one expected leak site: each
        // rung must see exactly one deadlock, and the cancel-capable
        // rungs exactly one delivery (the pattern has no recover, so
        // the delivery is a contained death).
        EXPECT_EQ(base.reports, 1u);
        EXPECT_EQ(base.detectedAtLabel, 1);
        EXPECT_EQ(base.resurrections, 0u);
        EXPECT_EQ(base.quarantined, 0u);
        const bool cancels = rung == rt::Recovery::Cancel ||
                             rung == rt::Recovery::Quarantine;
        EXPECT_EQ(base.cancels, cancels ? 1u : 0u);
        EXPECT_EQ(base.cancelDeaths, cancels ? 1u : 0u);

        // Same (seed, config) twice: byte-identical accounting.
        EXPECT_TRUE(base == runLadder(*p, rung, 1, false));
        // Parallel marking must not change any guard outcome.
        EXPECT_TRUE(base == runLadder(*p, rung, 2, false));
        EXPECT_TRUE(base == runLadder(*p, rung, 4, false));
    }
}

TEST(GuardTest, WatchdogKeepsCorpusCountsIntact)
{
    const microbench::Pattern* p =
        microbench::Registry::instance().find("cgo/ex2");
    ASSERT_NE(p, nullptr);
    LadderCounts off = runLadder(*p, rt::Recovery::Reclaim, 1, false);
    LadderCounts on = runLadder(*p, rt::Recovery::Reclaim, 1, true);
    // The watchdog may detect *earlier* but never more, fewer, or
    // different deadlocks on a deterministic pattern.
    EXPECT_EQ(off.reports, on.reports);
    EXPECT_EQ(off.detectedAtLabel, on.detectedAtLabel);
    EXPECT_EQ(on.resurrections, 0u);
}

} // namespace
} // namespace golf
