/**
 * @file
 * Context package tests: cancellation trees, timeouts over virtual
 * time, select integration, GC interaction (a pending deadline pins
 * the context; dropped uncancellable contexts produce detectable
 * deadlocks).
 */
#include <gtest/gtest.h>

#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/context.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using rt::Context;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

TEST(ContextTest, CancelClosesDone)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<Context> ctx(rt::withCancel(*rtp,
                                              rt::background(*rtp)));
        EXPECT_FALSE(ctx->cancelled());
        ctx->cancel();
        EXPECT_TRUE(ctx->cancelled());
        auto r = co_await chan::recv(ctx->done());
        EXPECT_FALSE(r.ok); // closed channel
        ctx->cancel();      // idempotent
        co_return;
    }, &rt);
}

TEST(ContextTest, CancelPropagatesToSubtree)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<Context> root(rt::background(*rtp));
        gc::Local<Context> a(rt::withCancel(*rtp, root.get()));
        gc::Local<Context> b(rt::withCancel(*rtp, a.get()));
        gc::Local<Context> sibling(rt::withCancel(*rtp, root.get()));
        a->cancel();
        EXPECT_TRUE(a->cancelled());
        EXPECT_TRUE(b->cancelled());
        EXPECT_FALSE(root->cancelled());
        EXPECT_FALSE(sibling->cancelled());
        co_return;
    }, &rt);
}

TEST(ContextTest, TimeoutFiresOnVirtualClock)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<Context> ctx(rt::withTimeout(
            *rtp, rt::background(*rtp), 5 * kMillisecond));
        auto r = co_await chan::recv(ctx->done());
        EXPECT_FALSE(r.ok);
        EXPECT_TRUE(ctx->cancelled());
        EXPECT_GE(rtp->clock().now(), 5 * kMillisecond);
        co_return;
    }, &rt);
}

TEST(ContextTest, SelectOnDoneIsTheGoIdiom)
{
    Runtime rt;
    int outcome = -1;
    rt.runMain(
        +[](Runtime* rtp, int* out) -> Go {
            gc::Local<Context> ctx(rt::withTimeout(
                *rtp, rt::background(*rtp), 2 * kMillisecond));
            gc::Local<Channel<int>> work(makeChan<int>(*rtp, 0));
            // Nobody sends work: the deadline must win.
            *out = co_await chan::select(
                chan::recvCase(work.get()),
                chan::recvCase(ctx->done()));
            co_return;
        },
        &rt, &outcome);
    EXPECT_EQ(outcome, 1);
}

TEST(ContextTest, WorkerStopsOnCancel)
{
    Runtime rt;
    int processed = 0;
    rt.runMain(
        +[](Runtime* rtp, int* processedp) -> Go {
            gc::Local<Context> ctx(
                rt::withCancel(*rtp, rt::background(*rtp)));
            gc::Local<Channel<int>> jobs(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp,
                +[](Context* c, Channel<int>* j, int* done) -> Go {
                    while (true) {
                        int v = 0;
                        int idx = co_await chan::select(
                            chan::recvCase(j, &v),
                            chan::recvCase(c->done()));
                        if (idx == 1)
                            break; // ctx.Done(): clean exit
                        ++*done;
                    }
                    co_return;
                }, ctx.get(), jobs.get(), processedp);
            for (int i = 0; i < 3; ++i)
                co_await chan::send(jobs.get(), i);
            ctx->cancel();
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &processed);
    EXPECT_EQ(processed, 3);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Waiting), 0u);
}

TEST(ContextTest, PendingDeadlinePinsContextAgainstGc)
{
    // A goroutine blocked only on a with-timeout done channel is
    // live (the deadline will fire) — GOLF must not flag it.
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[](Runtime* rp) -> Go {
            Context* ctx = rt::withTimeout(
                *rp, rt::background(*rp), 50 * kMillisecond);
            co_await chan::recv(ctx->done());
            co_return;
        }, rtp);
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        EXPECT_EQ(rtp->collector().reports().total(), 0u);
        co_await rt::sleepFor(100 * kMillisecond); // deadline fires
        EXPECT_EQ(rtp->blockedCandidates().size(), 0u);
        co_return;
    }, &rt);
}

TEST(ContextTest, DroppedUncancellableContextIsADeadlock)
{
    // The classic bug: a worker waits on ctx.Done() of a cancellable
    // context whose cancel function was dropped without being
    // called. Once the context is unreachable from live code, the
    // worker can never be released: GOLF reports it.
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[](Context* c) -> Go {
            co_await chan::recv(c->done());
            co_return;
        }, rt::withCancel(*rtp, rt::background(*rtp)));
        // The context (and its cancel capability) is dropped here.
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        EXPECT_EQ(rtp->collector().reports().total(), 1u);
        co_return;
    }, &rt);
}

TEST(ContextTest, ChildDoesNotPinDroppedParentTree)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        size_t before = rtp->heap().liveObjects();
        {
            gc::Local<Context> keepChild;
            {
                gc::Local<Context> root(rt::background(*rtp));
                keepChild = rt::withCancel(*rtp, root.get());
            }
            // root dropped; child kept. The child->parent edge is
            // untraced, so the root may be collected.
            co_await rt::gcNow();
            // child + its done channel survive.
            EXPECT_GE(rtp->heap().liveObjects(), 2u);
        }
        co_await rt::gcNow();
        EXPECT_EQ(rtp->heap().liveObjects(), before);
        co_return;
    }, &rt);
}

} // namespace
} // namespace golf
