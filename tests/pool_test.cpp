/**
 * @file
 * sync.Pool / sync.Once tests: Go's two-cycle pooled-object
 * lifetime (primary -> victim -> swept), New fallback, reuse before
 * collection, pool-object teardown, and once-exactly semantics with
 * suspending initializers.
 */
#include <gtest/gtest.h>

#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/pool.hpp"

namespace golf {
namespace {

using rt::Go;
using rt::Runtime;

struct Buf : gc::Object
{
    int tag = 0;
    const char* objectName() const override { return "buf"; }
};

TEST(PoolTest, GetReturnsPutObject)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<sync::Pool<Buf>> pool(
            rtp->make<sync::Pool<Buf>>(*rtp));
        Buf* b = rtp->make<Buf>();
        b->tag = 42;
        pool->put(b);
        EXPECT_EQ(pool->get(), b);
        EXPECT_EQ(pool->get(), nullptr); // empty, no New
        co_return;
    }, &rt);
}

TEST(PoolTest, NewFallback)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<sync::Pool<Buf>> pool(rtp->make<sync::Pool<Buf>>(
            *rtp, [rtp] { return rtp->make<Buf>(); }));
        Buf* b = pool->get();
        EXPECT_NE(b, nullptr);
        if (!b) co_return;
        EXPECT_TRUE(rtp->heap().owns(b));
        co_return;
    }, &rt);
}

TEST(PoolTest, PooledObjectSurvivesOneCycleThenIsSwept)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<sync::Pool<Buf>> pool(
            rtp->make<sync::Pool<Buf>>(*rtp));
        Buf* b = rtp->make<Buf>();
        pool->put(b);
        size_t withBuf = rtp->heap().liveObjects();

        // Cycle 1: primary -> victim; still reachable via the pool.
        co_await rt::gcNow();
        EXPECT_EQ(pool->primarySize(), 0u);
        EXPECT_EQ(pool->victimSize(), 1u);
        EXPECT_EQ(rtp->heap().liveObjects(), withBuf);

        // Cycle 2: victim dropped before marking -> swept.
        co_await rt::gcNow();
        EXPECT_EQ(pool->victimSize(), 0u);
        EXPECT_EQ(rtp->heap().liveObjects(), withBuf - 1);
        co_return;
    }, &rt);
}

TEST(PoolTest, GetRecoversFromVictimCache)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<sync::Pool<Buf>> pool(
            rtp->make<sync::Pool<Buf>>(*rtp));
        Buf* b = rtp->make<Buf>();
        b->tag = 7;
        pool->put(b);
        co_await rt::gcNow(); // demoted to victim
        Buf* back = pool->get();
        EXPECT_EQ(back, b);
        EXPECT_EQ(back->tag, 7);
        co_return;
    }, &rt);
}

TEST(PoolTest, CollectedPoolDeregistersItself)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        {
            gc::Local<sync::Pool<Buf>> pool(
                rtp->make<sync::Pool<Buf>>(*rtp));
            pool->put(rtp->make<Buf>());
        }
        // The pool is garbage now; collecting it must not leave a
        // dangling cleanup registration behind (the next cycles
        // would crash otherwise).
        co_await rt::gcNow();
        co_await rt::gcNow();
        co_await rt::gcNow();
        EXPECT_EQ(rtp->heap().liveObjects(), 0u);
        co_return;
    }, &rt);
}

TEST(PoolTest, PoolAliveAtRuntimeTeardownIsSafe)
{
    // No GC runs after main returns, so the pool object survives
    // into ~Runtime, where the heap (destroyed last) deletes it.
    // Its destructor must not touch the already-dead registry —
    // ASan builds verify the absence of UB here.
    {
        Runtime rt;
        rt.runMain(+[](Runtime* rtp) -> Go {
            auto* pool = rtp->make<sync::Pool<Buf>>(*rtp);
            pool->put(rtp->make<Buf>());
            co_return;
        }, &rt);
    }
    SUCCEED();
}

TEST(OnceTest, RunsExactlyOnceAcrossConcurrentCallers)
{
    Runtime rt;
    int runs = 0;
    rt.runMain(
        +[](Runtime* rtp, int* runsp) -> Go {
            gc::Local<sync::Once> once(rtp->make<sync::Once>(*rtp));
            auto init = [runsp]() -> rt::Task<void> {
                co_await rt::sleepFor(support::kMillisecond);
                ++*runsp;
                co_return;
            };
            for (int i = 0; i < 5; ++i) {
                GOLF_GO(*rtp, +[](sync::Once* o, int* r) -> Go {
                    co_await o->doOnce([r]() -> rt::Task<void> {
                        co_await rt::sleepFor(support::kMillisecond);
                        ++*r;
                        co_return;
                    });
                    co_return;
                }, once.get(), runsp);
            }
            co_await rt::sleepFor(10 * support::kMillisecond);
            EXPECT_TRUE(once->done());
            (void)init;
            co_return;
        },
        &rt, &runs);
    EXPECT_EQ(runs, 1);
}

} // namespace
} // namespace golf
