/**
 * @file
 * Tracer tests: event capture across a goroutine's lifecycle, the
 * deadlock/reclaim trail, GC bracketing, CSV output, and the
 * disabled-by-default contract.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using rt::TraceEvent;
using support::kMillisecond;

TEST(TracerTest, DisabledByDefaultRecordsNothing)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[]() -> Go { co_return; });
        co_await rt::yield();
        co_return;
    }, &rt);
    EXPECT_TRUE(rt.tracer().records().empty());
}

TEST(TracerTest, LifecycleTrail)
{
    Runtime rt;
    rt.tracer().enable();
    uint64_t childId = 0;
    rt.runMain(
        +[](Runtime* rtp, uint64_t* idp) -> Go {
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            rt::Goroutine* g = GOLF_GO(*rtp,
                +[](Channel<int>* c) -> Go {
                    co_await chan::recv(c);
                    co_return;
                }, ch.get());
            *idp = g->id();
            co_await rt::sleepFor(kMillisecond);
            co_await chan::send(ch.get(), 1);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &childId);

    auto trail = rt.tracer().forGoroutine(childId);
    ASSERT_GE(trail.size(), 4u);
    // spawn -> park(chan recv) -> ready -> done, in time order.
    EXPECT_EQ(trail.front().event, TraceEvent::Spawn);
    EXPECT_EQ(trail.back().event, TraceEvent::Done);
    bool sawPark = false, sawReady = false;
    for (const auto& r : trail) {
        if (r.event == TraceEvent::Park) {
            sawPark = true;
            EXPECT_EQ(r.reason, rt::WaitReason::ChanRecv);
            EXPECT_FALSE(sawReady);
        }
        if (r.event == TraceEvent::Ready)
            sawReady = true;
    }
    EXPECT_TRUE(sawPark);
    EXPECT_TRUE(sawReady);
    for (size_t i = 1; i < trail.size(); ++i)
        EXPECT_GE(trail[i].t, trail[i - 1].t);
}

TEST(TracerTest, DeadlockAndReclaimEventsEmitted)
{
    Runtime rt;
    rt.tracer().enable();
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
            co_await chan::recv(c);
            co_return;
        }, makeChan<int>(*rtp, 0));
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_await rt::gcNow();
        co_return;
    }, &rt);

    EXPECT_EQ(rt.tracer().count(TraceEvent::Deadlock), 1u);
    EXPECT_EQ(rt.tracer().count(TraceEvent::Reclaim), 1u);
    EXPECT_GE(rt.tracer().count(TraceEvent::GcStart), 2u);
    EXPECT_EQ(rt.tracer().count(TraceEvent::GcStart),
              rt.tracer().count(TraceEvent::GcEnd));
}

TEST(TracerTest, SummaryAndCsv)
{
    Runtime rt;
    rt.tracer().enable();
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[]() -> Go {
            co_await rt::yield();
            co_return;
        });
        co_await rt::sleepFor(kMillisecond);
        co_return;
    }, &rt);

    std::string summary = rt.tracer().summary();
    EXPECT_NE(summary.find("spawn: 2"), std::string::npos);
    EXPECT_NE(summary.find("done:"), std::string::npos);

    std::string path = "/tmp/golfcc_trace_test.csv";
    rt.tracer().writeCsv(path);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "t_ns,event,goroutine,reason");
    size_t lines = 0;
    for (std::string line; std::getline(in, line);)
        ++lines;
    EXPECT_EQ(lines, rt.tracer().records().size());
}

TEST(TracerTest, ChromeTraceIsWellFormedJson)
{
    Runtime rt;
    rt.tracer().enable();
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[]() -> Go { co_return; });
        co_await rt::sleepFor(kMillisecond);
        co_return;
    }, &rt);

    std::string path = "/tmp/golfcc_chrome_trace_test.json";
    rt.tracer().writeChromeTrace(path);
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    ASSERT_FALSE(all.empty());
    EXPECT_EQ(all.front(), '[');
    size_t events = 0;
    for (size_t pos = 0;
         (pos = all.find("\"ph\":\"i\"", pos)) != std::string::npos;
         ++pos)
        ++events;
    // No GC ran in this workload, so every record is an instant.
    ASSERT_EQ(rt.tracer().count(TraceEvent::GcStart), 0u);
    EXPECT_EQ(events, rt.tracer().records().size());
}

namespace {

size_t
countSubstr(const std::string& hay, const std::string& needle)
{
    size_t n = 0;
    for (size_t pos = 0;
         (pos = hay.find(needle, pos)) != std::string::npos; ++pos)
        ++n;
    return n;
}

} // namespace

TEST(TracerTest, ChromeTraceGcPairsBecomeDurationSpans)
{
    Runtime rt;
    rt.tracer().enable();
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[]() -> Go { co_return; });
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_return;
    }, &rt);

    const size_t pairs = rt.tracer().count(TraceEvent::GcStart);
    ASSERT_GE(pairs, 2u);
    ASSERT_EQ(pairs, rt.tracer().count(TraceEvent::GcEnd));

    std::ostringstream os;
    rt::writeTraceChrome(os, rt.tracer().records());
    const std::string all = os.str();

    // Each GcStart/GcEnd pair collapses into one "X" complete span
    // named GC on the dedicated tid-0 row; the GcEnd is consumed.
    EXPECT_EQ(countSubstr(all, "\"ph\":\"X\""), pairs);
    EXPECT_EQ(countSubstr(all, "\"name\":\"GC\""), pairs);
    EXPECT_EQ(countSubstr(all, "\"dur\":"), pairs);
    EXPECT_EQ(countSubstr(all, "gc-start"), 0u);
    EXPECT_EQ(countSubstr(all, "gc-end"), 0u);
    EXPECT_EQ(countSubstr(all, "\"ph\":\"i\""),
              rt.tracer().records().size() - 2 * pairs);

    // JSON shape: one array, every event object comma-separated.
    ASSERT_GE(all.size(), 2u);
    EXPECT_EQ(all.front(), '[');
    EXPECT_EQ(all[all.size() - 2], ']');
    EXPECT_EQ(countSubstr(all, "{\"name\":"),
              countSubstr(all, "}}"));
}

TEST(TracerTest, BoundedTracerCountsDrops)
{
    Runtime rt;
    rt.tracer().setCapacity(4);
    rt.tracer().enable();
    rt.runMain(+[](Runtime* rtp) -> Go {
        for (int i = 0; i < 8; ++i)
            GOLF_GO(*rtp, +[]() -> Go { co_return; });
        co_await rt::sleepFor(kMillisecond);
        co_return;
    }, &rt);

    EXPECT_EQ(rt.tracer().records().size(), 4u);
    EXPECT_GT(rt.tracer().dropped(), 0u);
    const std::string summary = rt.tracer().summary();
    EXPECT_NE(summary.find("dropped: "), std::string::npos);

    rt.tracer().clear();
    EXPECT_EQ(rt.tracer().dropped(), 0u);
    EXPECT_EQ(rt.tracer().summary().find("dropped"),
              std::string::npos);
}

} // namespace
} // namespace golf
