/**
 * @file
 * golf::cluster tests: net-fault injector determinism, wire-format
 * roundtrips, consistent-hash routing, link-level reliability, the
 * coordinator's epoch-confirmation conditions, the phi failure
 * detector's ladder, and end-to-end cluster runs — fault-free, leaky,
 * faulted + byte-identical repro, partition degrade-then-detect, and
 * rolling restart.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/detector.hpp"
#include "cluster/link.hpp"
#include "cluster/message.hpp"
#include "cluster/netfault.hpp"
#include "support/vclock.hpp"

namespace golf {
namespace {

using namespace golf::cluster;
using support::VTime;
using support::kMillisecond;
using support::kSecond;

// ---------------------------------------------------------------
// NetFaultInjector
// ---------------------------------------------------------------

NetFaultConfig
faultyCfg()
{
    NetFaultConfig c;
    c.enabled = true;
    c.dropProb = 0.1;
    c.dupProb = 0.05;
    c.reorderProb = 0.05;
    c.delayProb = 0.1;
    return c;
}

TEST(NetFaultTest, SameSeedSameDecisionsAndTrace)
{
    NetFaultInjector a(faultyCfg(), 42), b(faultyCfg(), 42);
    for (int i = 0; i < 500; ++i) {
        const NetFault fa = a.decide(LinkSite::Data, i * 1000, 0, 1);
        const NetFault fb = b.decide(LinkSite::Data, i * 1000, 0, 1);
        ASSERT_EQ(fa.kind, fb.kind) << "at call " << i;
        ASSERT_EQ(fa.magnitude, fb.magnitude) << "at call " << i;
    }
    EXPECT_EQ(a.trace(), b.trace());
    EXPECT_GT(a.injected(), 0u);
}

TEST(NetFaultTest, DifferentSeedsDiverge)
{
    NetFaultInjector a(faultyCfg(), 1), b(faultyCfg(), 2);
    int diff = 0;
    for (int i = 0; i < 500; ++i) {
        if (a.decide(LinkSite::Data, i, 0, 1).kind !=
            b.decide(LinkSite::Data, i, 0, 1).kind)
            ++diff;
    }
    EXPECT_GT(diff, 0);
}

TEST(NetFaultTest, DisabledInjectorNeverFaults)
{
    NetFaultInjector inj(NetFaultConfig{}, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(inj.decide(LinkSite::Data, i, 0, 1).kind,
                  NetFaultKind::None);
    EXPECT_EQ(inj.injected(), 0u);
}

TEST(NetFaultTest, PartitionWindowCutsOnlyTheConfiguredShard)
{
    NetFaultConfig c;
    c.enabled = true;
    c.partitionShard = 1;
    c.partitionStartNs = 100;
    c.partitionDurationNs = 50;
    NetFaultInjector inj(c, 3);
    EXPECT_EQ(inj.decide(LinkSite::Data, 120, 0, 1).kind,
              NetFaultKind::Partition);
    EXPECT_EQ(inj.decide(LinkSite::Data, 120, 1, 2).kind,
              NetFaultKind::Partition);
    EXPECT_EQ(inj.decide(LinkSite::Data, 120, 0, 2).kind,
              NetFaultKind::None);
    EXPECT_EQ(inj.decide(LinkSite::Data, 99, 0, 1).kind,
              NetFaultKind::None);
    EXPECT_EQ(inj.decide(LinkSite::Data, 150, 0, 1).kind,
              NetFaultKind::None);
}

// ---------------------------------------------------------------
// Wire format + ring
// ---------------------------------------------------------------

TEST(MessageTest, EncodeDecodeRoundtrip)
{
    Message m;
    m.type = MsgType::Request;
    m.src = 3;
    m.dst = 1;
    m.seq = 77;
    m.reqId = 0x123456789abcULL;
    m.key = 0xdeadbeefULL;
    m.generation = 4;
    m.sentVt = 123456789;
    m.payload = "hello\0world"; // embedded NUL survives
    Message out;
    ASSERT_TRUE(Message::decode(m.encode(), out));
    EXPECT_EQ(out.type, m.type);
    EXPECT_EQ(out.src, m.src);
    EXPECT_EQ(out.dst, m.dst);
    EXPECT_EQ(out.seq, m.seq);
    EXPECT_EQ(out.reqId, m.reqId);
    EXPECT_EQ(out.key, m.key);
    EXPECT_EQ(out.generation, m.generation);
    EXPECT_EQ(out.sentVt, m.sentVt);
    EXPECT_EQ(out.payload, m.payload);
}

TEST(MessageTest, DecodeRejectsTruncatedAndTrailingBytes)
{
    Message m;
    m.payload = "payload";
    const std::string bytes = m.encode();
    Message out;
    EXPECT_FALSE(Message::decode(bytes.substr(0, bytes.size() - 1),
                                 out));
    EXPECT_FALSE(Message::decode(bytes + "x", out));
    EXPECT_FALSE(Message::decode("", out));
}

TEST(SummaryTest, PayloadRoundtrip)
{
    SummaryData s;
    s.shard = 2;
    s.generation = 1;
    s.epoch = 9;
    s.vt = 5 * kSecond;
    s.sentTo = {1, 2, 3, 4};
    s.deliveredFrom = {4, 3, 2, 1};
    s.pending = {{11, 0, 100}, {22, 3, 200}};
    s.dead = {7, 8};
    s.active = {9};
    SummaryData out;
    ASSERT_TRUE(SummaryData::decodePayload(s.encodePayload(), out));
    EXPECT_EQ(out.shard, 2);
    EXPECT_EQ(out.epoch, 9u);
    EXPECT_EQ(out.sentTo, s.sentTo);
    EXPECT_EQ(out.deliveredFrom, s.deliveredFrom);
    ASSERT_EQ(out.pending.size(), 2u);
    EXPECT_EQ(out.pending[1].reqId, 22u);
    EXPECT_EQ(out.pending[1].target, 3);
    EXPECT_EQ(out.dead, s.dead);
    EXPECT_EQ(out.active, s.active);
}

TEST(RingTest, RoutesEveryKeyAndBalancesRoughly)
{
    Ring ring(4, 16);
    std::vector<int> hits(4, 0);
    for (uint64_t k = 0; k < 4000; ++k) {
        const int s = ring.route(mix64(k));
        ASSERT_GE(s, 0);
        ASSERT_LT(s, 4);
        ++hits[static_cast<size_t>(s)];
    }
    for (int s = 0; s < 4; ++s)
        EXPECT_GT(hits[static_cast<size_t>(s)], 200)
            << "shard " << s << " starved";
}

TEST(RingTest, UnroutableShardIsSkippedAndKeysRemapMinimally)
{
    Ring ring(4, 16);
    std::vector<int> before(1000);
    for (uint64_t k = 0; k < 1000; ++k)
        before[k] = ring.route(k);
    ring.setRoutable(2, false);
    int moved = 0;
    for (uint64_t k = 0; k < 1000; ++k) {
        const int s = ring.route(k);
        ASSERT_NE(s, 2);
        if (before[k] != 2 && s != before[k])
            ++moved;
    }
    // Only keys owned by shard 2 remap.
    EXPECT_EQ(moved, 0);
    ring.setRoutable(2, true);
    for (uint64_t k = 0; k < 1000; ++k)
        EXPECT_EQ(ring.route(k), before[k]);
}

TEST(RingTest, AllShardsDownRoutesNowhere)
{
    Ring ring(2, 8);
    ring.setRoutable(0, false);
    ring.setRoutable(1, false);
    EXPECT_EQ(ring.route(123), -1);
}

// ---------------------------------------------------------------
// Link layer
// ---------------------------------------------------------------

TEST(LinkTest, ReliableDeliveryOnCleanLink)
{
    Network net(NetworkConfig{}, 5);
    Message m;
    m.type = MsgType::Request;
    m.src = 0;
    m.dst = 1;
    m.reqId = 42;
    net.send(m, 0);
    EXPECT_TRUE(net.pump(0).empty()); // latency not yet elapsed
    auto out = net.pump(2 * kMillisecond);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dst, 1);
    EXPECT_EQ(out[0].msg.reqId, 42u);
    EXPECT_EQ(net.sentTo(0, 1), 1u);
    EXPECT_EQ(net.deliveredFrom(1, 0), 1u);
    // The ack clears the retransmit buffer: nothing further happens.
    net.pump(10 * kMillisecond);
    EXPECT_EQ(net.totals().retransmits, 0u);
}

TEST(LinkTest, DroppedMessageIsRetransmittedUntilDelivered)
{
    NetworkConfig cfg;
    cfg.faults.enabled = true;
    cfg.faults.dropProb = 1.0;
    cfg.faults.maxFaults = 3; // first 3 transmissions die
    Network net(cfg, 9);
    Message m;
    m.type = MsgType::Response;
    m.src = 1;
    m.dst = 0;
    m.reqId = 7;
    net.send(m, 0);
    bool delivered = false;
    for (VTime t = 0; t <= 10 * kSecond && !delivered;
         t += kMillisecond) {
        for (auto& d : net.pump(t))
            delivered |= d.msg.reqId == 7;
    }
    EXPECT_TRUE(delivered);
    EXPECT_GE(net.totals().retransmits, 3u);
    EXPECT_EQ(net.totals().delivered, 1u); // exactly once
}

TEST(LinkTest, DuplicatesAreDeduped)
{
    NetworkConfig cfg;
    cfg.faults.enabled = true;
    cfg.faults.dupProb = 1.0;
    cfg.faults.maxFaults = 1;
    Network net(cfg, 11);
    Message m;
    m.type = MsgType::Request;
    m.src = 0;
    m.dst = 1;
    m.reqId = 99;
    net.send(m, 0);
    int appDeliveries = 0;
    for (VTime t = 0; t <= kSecond; t += kMillisecond)
        for (auto& d : net.pump(t))
            appDeliveries += d.msg.reqId == 99 ? 1 : 0;
    EXPECT_EQ(appDeliveries, 1);
    EXPECT_GE(net.totals().deduped, 1u);
}

TEST(LinkTest, UnreliableTypesAreNeverRetransmitted)
{
    NetworkConfig cfg;
    cfg.faults.enabled = true;
    cfg.faults.dropProb = 1.0;
    Network net(cfg, 13);
    Message hb;
    hb.type = MsgType::Heartbeat;
    hb.src = 0;
    hb.dst = kControlEndpoint;
    net.send(hb, 0);
    for (VTime t = 0; t <= kSecond; t += 10 * kMillisecond)
        EXPECT_TRUE(net.pump(t).empty());
    EXPECT_EQ(net.totals().retransmits, 0u);
    EXPECT_EQ(net.totals().dropped, 1u);
}

// ---------------------------------------------------------------
// Coordinator: epoch-confirmation soundness conditions
// ---------------------------------------------------------------

SummaryData
mkSummary(int shard, uint64_t epoch, VTime vt, int shards = 2,
          uint32_t gen = 0)
{
    SummaryData s;
    s.shard = shard;
    s.generation = gen;
    s.epoch = epoch;
    s.vt = vt;
    s.sentTo.assign(static_cast<size_t>(shards), 0);
    s.deliveredFrom.assign(static_cast<size_t>(shards), 0);
    return s;
}

/** The canonical positive case: waiter on 0, dead handler on 1,
 *  confirmed over epochs b1 < a2 < b2, quiescent link. */
std::vector<Verdict>
confirmedScenario(Coordinator& coord)
{
    auto b1 = mkSummary(1, 1, 100);
    b1.dead = {77};
    b1.deliveredFrom = {1, 0};
    auto a1 = mkSummary(0, 1, 110);
    a1.pending = {{77, 1, 50}};
    a1.sentTo = {0, 1};
    auto a2 = mkSummary(0, 2, 200);
    a2.pending = {{77, 1, 50}};
    a2.sentTo = {0, 1};
    auto b2 = mkSummary(1, 2, 300);
    b2.dead = {77};
    b2.deliveredFrom = {1, 0};
    coord.onSummary(b1);
    coord.onSummary(a1);
    coord.onSummary(a2);
    coord.onSummary(b2);
    return coord.round(1000, {false, false});
}

TEST(CoordinatorTest, ConfirmedFrontierIssuesVerdict)
{
    Coordinator coord(2);
    auto vs = confirmedScenario(coord);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].reqId, 77u);
    EXPECT_EQ(vs[0].waiterShard, 0);
    EXPECT_EQ(vs[0].targetShard, 1);
    // Idempotent: the same frontier never re-issues.
    EXPECT_TRUE(coord.round(2000, {false, false}).empty());
}

TEST(CoordinatorTest, SingleEpochOfDeathIsNotEnough)
{
    Coordinator coord(2);
    auto b1 = mkSummary(1, 1, 100);
    b1.dead = {77};
    b1.deliveredFrom = {1, 0};
    auto b2 = mkSummary(1, 2, 300);
    b2.deliveredFrom = {1, 0}; // dead mark gone: handler respawned
    auto a1 = mkSummary(0, 1, 110);
    a1.pending = {{77, 1, 50}};
    a1.sentTo = {0, 1};
    auto a2 = mkSummary(0, 2, 200);
    a2.pending = {{77, 1, 50}};
    a2.sentTo = {0, 1};
    coord.onSummary(b1);
    coord.onSummary(b2);
    coord.onSummary(a1);
    coord.onSummary(a2);
    EXPECT_TRUE(coord.round(1000, {false, false}).empty());
}

TEST(CoordinatorTest, InFlightRequestBlocksVerdict)
{
    Coordinator coord(2);
    auto b1 = mkSummary(1, 1, 100);
    b1.dead = {77};
    b1.deliveredFrom = {1, 0};
    auto a1 = mkSummary(0, 1, 110);
    a1.pending = {{77, 1, 50}};
    a1.sentTo = {0, 2}; // A sent 2 to B...
    auto a2 = mkSummary(0, 2, 200);
    a2.pending = {{77, 1, 50}};
    a2.sentTo = {0, 2};
    auto b2 = mkSummary(1, 2, 300);
    b2.dead = {77};
    b2.deliveredFrom = {1, 1}; // ...but B has only seen 1: not quiescent
    coord.onSummary(b1);
    coord.onSummary(a1);
    coord.onSummary(a2);
    coord.onSummary(b2);
    EXPECT_TRUE(coord.round(1000, {false, false}).empty());
}

TEST(CoordinatorTest, DownShardDegradesInsteadOfGuessing)
{
    Coordinator coord(2);
    auto b1 = mkSummary(1, 1, 100);
    b1.dead = {77};
    b1.deliveredFrom = {1, 0};
    auto a1 = mkSummary(0, 1, 110);
    a1.pending = {{77, 1, 50}};
    a1.sentTo = {0, 1};
    auto a2 = mkSummary(0, 2, 200);
    a2.pending = {{77, 1, 50}};
    a2.sentTo = {0, 1};
    auto b2 = mkSummary(1, 2, 300);
    b2.dead = {77};
    b2.deliveredFrom = {1, 0};
    coord.onSummary(b1);
    coord.onSummary(a1);
    coord.onSummary(a2);
    coord.onSummary(b2);
    // Identical evidence, but shard 1 is in safe mode: no verdict,
    // round counted as degraded.
    EXPECT_TRUE(coord.round(1000, {false, true}).empty());
    EXPECT_EQ(coord.degradedRounds(), 1u);
    // Once it recovers, the (still confirmed) frontier acts.
    EXPECT_EQ(coord.round(2000, {false, false}).size(), 1u);
}

TEST(CoordinatorTest, RestartGenerationVoidsOldEvidence)
{
    Coordinator coord(2);
    auto b1 = mkSummary(1, 1, 100);
    b1.dead = {77};
    b1.deliveredFrom = {1, 0};
    auto a1 = mkSummary(0, 1, 110);
    a1.pending = {{77, 1, 50}};
    a1.sentTo = {0, 1};
    auto a2 = mkSummary(0, 2, 200);
    a2.pending = {{77, 1, 50}};
    a2.sentTo = {0, 1};
    // b2 arrives under a new generation: the (b1, b2) pair no longer
    // confirms anything.
    auto b2 = mkSummary(1, 2, 300, 2, /*gen=*/1);
    b2.dead = {77};
    b2.deliveredFrom = {1, 0};
    coord.onSummary(b1);
    coord.onSummary(a1);
    coord.onSummary(a2);
    coord.onSummary(b2);
    EXPECT_TRUE(coord.round(1000, {false, false}).empty());
}

TEST(CoordinatorTest, StaleAndDuplicateSummariesAreDropped)
{
    Coordinator coord(2);
    auto s3 = mkSummary(0, 3, 300);
    auto s2 = mkSummary(0, 2, 200);
    coord.onSummary(s3);
    coord.onSummary(s2); // late reordered arrival: ignored
    coord.onSummary(s3); // duplicate: ignored
    EXPECT_EQ(coord.summariesReceived(), 3u);
}

// ---------------------------------------------------------------
// Failure detector ladder
// ---------------------------------------------------------------

TEST(FailureDetectorTest, PhiClimbsThroughSuspectToSafeMode)
{
    PhiConfig cfg; // heartbeatEvery 50ms, suspect 4, safe-mode 10
    FailureDetector fd(cfg, 2);
    fd.onHeartbeat(0, 0);
    fd.onHeartbeat(1, 0);
    fd.poll(100 * kMillisecond); // phi = 2
    EXPECT_EQ(fd.health(1), ShardHealth::Healthy);
    fd.poll(250 * kMillisecond); // phi = 5
    EXPECT_EQ(fd.health(1), ShardHealth::Suspect);
    fd.poll(600 * kMillisecond); // phi = 12
    EXPECT_EQ(fd.health(1), ShardHealth::SafeMode);
    EXPECT_EQ(fd.suspectTransitions(), 2u); // both shards silent
    // A heartbeat collapses suspicion back to Healthy.
    fd.onHeartbeat(1, 610 * kMillisecond);
    fd.poll(620 * kMillisecond);
    EXPECT_EQ(fd.health(1), ShardHealth::Healthy);
}

TEST(FailureDetectorTest, RestartAndQuarantineRungs)
{
    PhiConfig cfg;
    cfg.restartPhi = 12.0;
    cfg.quarantinePhi = 20.0;
    cfg.maxRestarts = 1;
    FailureDetector fd(cfg, 1);
    fd.onHeartbeat(0, 0);
    auto acts = fd.poll(650 * kMillisecond); // phi = 13
    ASSERT_EQ(acts.toRestart.size(), 1u);
    fd.noteRestarted(0, 650 * kMillisecond);
    EXPECT_EQ(fd.restarts(0), 1);
    // Silence again; restarts are exhausted, so past quarantinePhi
    // the shard is quarantined.
    acts = fd.poll(650 * kMillisecond + 1100 * kMillisecond);
    ASSERT_EQ(acts.toQuarantine.size(), 1u);
    EXPECT_EQ(fd.health(0), ShardHealth::Quarantined);
}

// ---------------------------------------------------------------
// End-to-end cluster runs
// ---------------------------------------------------------------

ClusterConfig
smallCluster(uint64_t seed)
{
    ClusterConfig cfg;
    cfg.shards = 2;
    cfg.seed = seed;
    cfg.issueWindow = 600 * kMillisecond;
    cfg.grace = 500 * kMillisecond;
    cfg.clientsPerShard = 2;
    cfg.thinkNs = 20 * kMillisecond;
    return cfg;
}

TEST(ClusterTest, FaultFreeRunCompletesEverythingNoVerdicts)
{
    ClusterResult r = runCluster(smallCluster(21));
    EXPECT_FALSE(r.failed) << r.failReason;
    EXPECT_GT(r.issued, 20u);
    EXPECT_EQ(r.completed, r.issued);
    EXPECT_EQ(r.cancelled, 0u);
    EXPECT_EQ(r.verdicts, 0u);
    EXPECT_EQ(r.falsePositives, 0u);
    EXPECT_EQ(r.leaksInjected, 0u);
    EXPECT_GT(r.summaries, 0u);
    EXPECT_GT(r.rounds, 0u);
    for (const ShardOutcome& s : r.shards) {
        EXPECT_TRUE(s.mainCompleted);
        EXPECT_EQ(s.finalHealth, ShardHealth::Healthy);
    }
}

TEST(ClusterTest, LeaksAreDetectedWithZeroFalsePositives)
{
    ClusterConfig cfg = smallCluster(33);
    cfg.issueWindow = 800 * kMillisecond;
    cfg.grace = 1200 * kMillisecond;
    cfg.leakProb = 0.08;
    ClusterResult r = runCluster(cfg);
    EXPECT_FALSE(r.failed) << r.failReason;
    EXPECT_GT(r.leaksInjected, 0u);
    EXPECT_EQ(r.falsePositives, 0u);
    EXPECT_GT(r.leaksDetected, 0u);
    EXPECT_GE(r.leaksDetected, (r.leaksDetectable * 95) / 100);
    // Every cancelled caller corresponds to a verdict.
    EXPECT_EQ(r.cancelled, r.verdicts);
    EXPECT_EQ(r.completed + r.cancelled, r.issued);
}

TEST(ClusterTest, FaultedRunRepliesByteIdentically)
{
    ClusterConfig cfg = smallCluster(55);
    cfg.leakProb = 0.05;
    cfg.netfault.enabled = true;
    cfg.netfault.dropProb = 0.05;
    cfg.netfault.dupProb = 0.03;
    cfg.netfault.reorderProb = 0.03;
    cfg.netfault.delayProb = 0.05;
    ClusterResult r1 = runCluster(cfg);
    ClusterResult r2 = runCluster(cfg);
    EXPECT_FALSE(r1.failed) << r1.failReason;
    EXPECT_GT(r1.net.dropped + r1.net.duplicated + r1.net.reordered +
                  r1.net.delayed,
              0u);
    EXPECT_EQ(r1.repro, r2.repro);
    EXPECT_EQ(r1.completed, r2.completed);
    EXPECT_EQ(r1.falsePositives, 0u);
    // gcWorkers must not change cluster-visible behavior.
    ClusterConfig cfg2 = cfg;
    cfg2.gcWorkers = 2;
    ClusterResult r3 = runCluster(cfg2);
    EXPECT_EQ(r1.repro, r3.repro);
}

TEST(ClusterTest, PartitionDegradesThenDetectsAfterHeal)
{
    ClusterConfig cfg = smallCluster(77);
    cfg.shards = 3;
    cfg.issueWindow = 900 * kMillisecond;
    cfg.grace = 1600 * kMillisecond;
    cfg.leakProb = 0.08;
    cfg.netfault.enabled = true;
    cfg.netfault.partitionShard = 1;
    cfg.netfault.partitionStartNs = 300 * kMillisecond;
    cfg.netfault.partitionDurationNs = 600 * kMillisecond;
    ClusterResult r = runCluster(cfg);
    EXPECT_FALSE(r.failed) << r.failReason;
    // The partition must degrade rounds and trip the ladder...
    EXPECT_GT(r.degradedRounds, 0u);
    EXPECT_GT(r.suspects, 0u);
    EXPECT_GT(r.safeModes, 0u);
    // ...but never fabricate a verdict.
    EXPECT_EQ(r.falsePositives, 0u);
    EXPECT_GT(r.leaksInjected, 0u);
    EXPECT_GE(r.leaksDetected, (r.leaksDetectable * 95) / 100);
    // The partitioned shard healed: back to Healthy by the end.
    EXPECT_EQ(r.shards[1].finalHealth, ShardHealth::Healthy);
}

TEST(ClusterTest, RollingRestartReplaysJournalAndStaysSound)
{
    ClusterConfig cfg = smallCluster(91);
    cfg.shards = 3;
    cfg.issueWindow = 800 * kMillisecond;
    cfg.grace = 1200 * kMillisecond;
    cfg.leakProb = 0.05;
    cfg.restarts = {{0, 250 * kMillisecond},
                    {1, 450 * kMillisecond},
                    {2, 650 * kMillisecond}};
    ClusterResult r = runCluster(cfg);
    EXPECT_FALSE(r.failed) << r.failReason;
    EXPECT_EQ(r.restarts, 3u);
    EXPECT_EQ(r.falsePositives, 0u);
    // The journal replay keeps answering: most calls still complete.
    EXPECT_GT(r.completed, r.issued / 2);
    // Determinism holds across restarts too.
    ClusterResult r2 = runCluster(cfg);
    EXPECT_EQ(r.repro, r2.repro);
}

TEST(ClusterTest, FourShardsScaleAndStayConsistent)
{
    ClusterConfig cfg = smallCluster(13);
    cfg.shards = 4;
    ClusterResult r = runCluster(cfg);
    EXPECT_FALSE(r.failed) << r.failReason;
    EXPECT_EQ(r.completed, r.issued);
    EXPECT_EQ(r.falsePositives, 0u);
    uint64_t remote = 0;
    for (const ShardOutcome& s : r.shards)
        remote += s.remoteCalls;
    EXPECT_GT(remote, 0u); // consistent hashing crosses shards
}

} // namespace
} // namespace golf
