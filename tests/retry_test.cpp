/**
 * @file
 * Unit tests for the client-side resilience policies in
 * service/retry.hpp: exponential backoff with seeded jitter and the
 * consecutive-failure circuit breaker.
 *
 * Both types are plain values over virtual time, so each test can
 * assert the exact schedule a seed produces — determinism here is
 * what makes the cluster link layer's retransmit schedule (and hence
 * the `-repro` transcript) byte-identical across runs.
 */
#include <gtest/gtest.h>

#include <vector>

#include "service/retry.hpp"
#include "support/rng.hpp"
#include "support/vclock.hpp"

namespace golf {
namespace {

using service::BackoffPolicy;
using service::CircuitBreaker;
using support::kMillisecond;
using support::kSecond;
using support::Rng;
using support::VTime;

// ---------------------------------------------------------------
// BackoffPolicy
// ---------------------------------------------------------------

// Two generators with the same seed must produce the identical
// schedule: exactly one draw per backoff() call, no hidden state.
TEST(BackoffPolicyTest, SeededJitterIsDeterministic)
{
    const BackoffPolicy p;
    Rng a(42), b(42);
    for (int attempt = 0; attempt < 16; ++attempt)
        EXPECT_EQ(p.backoff(attempt, a), p.backoff(attempt, b))
            << "attempt " << attempt;

    // Different seed, different schedule (with overwhelming
    // probability across 16 draws).
    Rng c(43);
    bool anyDiff = false;
    Rng a2(42);
    for (int attempt = 0; attempt < 16; ++attempt)
        anyDiff |= p.backoff(attempt, a2) != p.backoff(attempt, c);
    EXPECT_TRUE(anyDiff);
}

// backoff() consumes exactly one rng draw per call: interleaving a
// policy with a reference generator stays in lockstep.
TEST(BackoffPolicyTest, ExactlyOneDrawPerCall)
{
    const BackoffPolicy p;
    Rng used(7), reference(7);
    for (int attempt = 0; attempt < 10; ++attempt) {
        (void)p.backoff(attempt, used);
        (void)reference.next(); // mirror the single draw
    }
    // Both generators are now at the same position.
    EXPECT_EQ(used.next(), reference.next());
}

// The pre-jitter value doubles per attempt and saturates at `cap`;
// the jitter adds at most half the capped value, so every result
// lies in [b, 1.5b] where b = min(base << attempt, cap).
TEST(BackoffPolicyTest, GrowsExponentiallyWithinJitterBounds)
{
    BackoffPolicy p;
    p.base = 50 * kMillisecond;
    p.cap = 5 * kSecond;
    Rng rng(1);
    for (int attempt = 0; attempt < 20; ++attempt) {
        VTime b = p.base << attempt;
        if (b <= 0 || b > p.cap)
            b = p.cap;
        const VTime got = p.backoff(attempt, rng);
        EXPECT_GE(got, b) << "attempt " << attempt;
        EXPECT_LE(got, b + b / 2) << "attempt " << attempt;
    }
}

// Huge attempt numbers (shift overflow territory) must still land on
// the cap, not wrap to a tiny or negative wait.
TEST(BackoffPolicyTest, CapHoldsUnderShiftOverflow)
{
    BackoffPolicy p;
    p.base = 50 * kMillisecond;
    p.cap = 5 * kSecond;
    Rng rng(9);
    for (int attempt : {40, 62, 63, 64, 100, 1000}) {
        const VTime got = p.backoff(attempt, rng);
        EXPECT_GE(got, p.cap) << "attempt " << attempt;
        EXPECT_LE(got, p.cap + p.cap / 2) << "attempt " << attempt;
    }
}

// ---------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------

// The breaker opens on the `window`-th consecutive failure — not
// before — and onResult() reports the open transition exactly once.
TEST(CircuitBreakerTest, OpensAfterWindowConsecutiveFailures)
{
    CircuitBreaker cb;
    cb.window = 5;
    cb.cooldown = 1 * kSecond;

    const VTime now = 10 * kSecond;
    for (int i = 0; i < cb.window - 1; ++i) {
        EXPECT_FALSE(cb.onResult(false, now)) << "failure " << i;
        EXPECT_TRUE(cb.allow(now));
    }
    EXPECT_TRUE(cb.onResult(false, now)); // the opening failure
    EXPECT_FALSE(cb.allow(now));
    // Further failures while open don't re-report the transition.
    EXPECT_FALSE(cb.onResult(false, now));
}

// A success anywhere in the window resets the consecutive count, so
// intermittent failures below the threshold never trip the breaker.
TEST(CircuitBreakerTest, SuccessResetsWindow)
{
    CircuitBreaker cb;
    cb.window = 3;

    const VTime now = 0;
    for (int round = 0; round < 10; ++round) {
        EXPECT_FALSE(cb.onResult(false, now));
        EXPECT_FALSE(cb.onResult(false, now));
        EXPECT_FALSE(cb.onResult(true, now)); // reset
        EXPECT_TRUE(cb.allow(now));
    }
}

// While open, allow() sheds until the cool-down elapses; the first
// allow() at/after reopenAt closes the breaker with a clean window.
TEST(CircuitBreakerTest, ReopensAfterCooldown)
{
    CircuitBreaker cb;
    cb.window = 2;
    cb.cooldown = 1 * kSecond;

    VTime now = 5 * kSecond;
    cb.onResult(false, now);
    EXPECT_TRUE(cb.onResult(false, now));
    EXPECT_FALSE(cb.allow(now));
    EXPECT_FALSE(cb.allow(now + cb.cooldown - 1)); // still shedding
    EXPECT_TRUE(cb.allow(now + cb.cooldown));      // cool-down due

    // The reopen cleared the failure window: it takes a full window
    // of fresh consecutive failures to open again.
    now += cb.cooldown;
    EXPECT_FALSE(cb.onResult(false, now));
    EXPECT_TRUE(cb.allow(now));
    EXPECT_TRUE(cb.onResult(false, now)); // second failure reopens
    EXPECT_FALSE(cb.allow(now));
}

// Half-open collapse: after a cool-down reopen, a failure burst
// shorter than the window keeps the breaker closed (there is no
// single-probe half-open state; re-admission is a clean slate).
TEST(CircuitBreakerTest, ReopenIsCleanSlateNotHalfOpen)
{
    CircuitBreaker cb;
    cb.window = 4;
    cb.cooldown = 500 * kMillisecond;

    VTime now = 0;
    for (int i = 0; i < cb.window; ++i)
        cb.onResult(false, now);
    ASSERT_FALSE(cb.allow(now));

    now += cb.cooldown;
    ASSERT_TRUE(cb.allow(now));
    for (int i = 0; i < cb.window - 1; ++i) {
        cb.onResult(false, now);
        EXPECT_TRUE(cb.allow(now)) << "failure " << i;
    }
}

} // namespace
} // namespace golf
