/**
 * @file
 * Pool-vs-legacy allocator differential suite (ctest label `alloc`).
 *
 * The contract under test (DESIGN.md §13): the allocation backend is
 * observably transparent. For identical programs, pool and legacy
 * produce byte-identical GOLF reports, MemStats, per-cycle collector
 * signatures, chaos fault traces, race verdicts and captured obs
 * output — at every gcWorkers value. The backend may only change
 * where objects live and how their storage is recycled. The one
 * carve-out: the /mem/* span gauges describe pool span traffic by
 * definition, so obs comparisons strip them (stripMemLines).
 *
 * Layers:
 *  - ScenarioDifferential: a mixed leak/live/garbage runtime scenario
 *    compared field by field (reports, MemStats, cycle signatures)
 *    across backend x gcWorkers in {1, 2, 4}.
 *  - CorpusDifferential: the full 105-pattern microbench corpus, pool
 *    vs legacy, plus a subset swept across gcWorkers and with obs
 *    capture (the byte-identity surface) on.
 *  - ChaosDifferential: 32 chaos seeds over a rotating corpus slice
 *    with fault injection and invariant verification on — the repro
 *    trace (per-fault decision log) must be byte-identical.
 *  - RaceDifferential: detector stats and deduplicated report lines
 *    across backends, leaning on free-hook-at-sweep equivalence.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "chan/channel.hpp"
#include "gc/heap.hpp"
#include "golf/collector.hpp"
#include "golf/report.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using gc::AllocBackend;
using microbench::HarnessConfig;
using microbench::Pattern;
using microbench::Registry;
using microbench::RunOutcome;
using microbench::runPatternOnce;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

// ---------------------------------------------------------------------------
// ScenarioDifferential
// ---------------------------------------------------------------------------

Go
orphanReceiver(Runtime* rtp)
{
    gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
    co_await chan::recv(ch.get());
    co_return;
}

Go
liveReceiver(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

/** Leaks, live blocked goroutines, garbage churn across several size
 *  classes, forced collections. */
Go
scenarioMain(Runtime* rtp)
{
    {
        gc::Local<Channel<int>> junk(makeChan<int>(*rtp, 16));
        for (int i = 0; i < 16; ++i)
            co_await chan::send(junk.get(), i);
    }
    for (int i = 0; i < 3; ++i)
        GOLF_GO(*rtp, orphanReceiver, rtp);
    gc::Local<Channel<int>> held(makeChan<int>(*rtp, 0));
    for (int i = 0; i < 5; ++i)
        GOLF_GO(*rtp, liveReceiver, held.get());
    co_await rt::sleepFor(kMillisecond);
    co_await rt::gcNow();
    co_await rt::gcNow();
    for (int i = 0; i < 5; ++i)
        co_await chan::send(held.get(), i);
    co_await rt::sleepFor(kMillisecond);
    co_await rt::gcNow();
    co_return;
}

struct RunSnapshot
{
    std::vector<std::string> reportKeys;
    gc::MemStats ms;
    std::vector<std::string> cycleSignatures;
};

std::string
signatureOf(const detect::CycleStats& cs)
{
    std::ostringstream os;
    os << cs.cycle << '|' << cs.detectionRan << '|'
       << cs.markIterations << '|' << cs.pointersTraversed << '|'
       << cs.objectsMarked << '|' << cs.bytesMarked << '|'
       << cs.detectChecks << '|' << cs.modeledMarkNs << '|'
       << cs.modeledStwNs << '|' << cs.freedObjects << '|'
       << cs.deadlocksFound << '|' << cs.reclaimed << '|'
       << cs.quarantined;
    return os.str();
}

void
expectSameMemStats(const gc::MemStats& a, const gc::MemStats& b,
                   const std::string& what)
{
    EXPECT_EQ(a.heapAlloc, b.heapAlloc) << what;
    EXPECT_EQ(a.heapInuse, b.heapInuse) << what;
    EXPECT_EQ(a.heapObjects, b.heapObjects) << what;
    EXPECT_EQ(a.stackInuse, b.stackInuse) << what;
    EXPECT_EQ(a.totalAlloc, b.totalAlloc) << what;
    EXPECT_EQ(a.totalFreed, b.totalFreed) << what;
    EXPECT_EQ(a.pauseTotalNs, b.pauseTotalNs) << what;
    EXPECT_EQ(a.numGC, b.numGC) << what;
    EXPECT_EQ(a.gcCpuFraction, b.gcCpuFraction) << what;
}

RunSnapshot
runScenario(AllocBackend backend, int gcWorkers)
{
    rt::Config cfg;
    cfg.seed = 1337;
    cfg.gcMode = rt::GcMode::Golf;
    cfg.gcWorkers = gcWorkers;
    cfg.heap.backend = backend;
    Runtime rt(cfg);
    rt::RunResult rr = rt.runMain(scenarioMain, &rt);
    EXPECT_TRUE(rr.ok());

    RunSnapshot snap;
    for (const auto& r : rt.collector().reports().all())
        snap.reportKeys.push_back(r.dedupKey());
    std::sort(snap.reportKeys.begin(), snap.reportKeys.end());
    snap.ms = rt.memStats();
    for (const auto& cs : rt.collector().history())
        snap.cycleSignatures.push_back(signatureOf(cs));
    return snap;
}

TEST(ScenarioDifferential, BackendInvariantAcrossWorkerCounts)
{
    const RunSnapshot base = runScenario(AllocBackend::Pool, 1);
    ASSERT_FALSE(base.reportKeys.empty());
    ASSERT_FALSE(base.cycleSignatures.empty());
    for (int workers : {1, 2, 4}) {
        for (AllocBackend backend :
             {AllocBackend::Pool, AllocBackend::Legacy}) {
            const RunSnapshot s = runScenario(backend, workers);
            const std::string what =
                std::string(backend == AllocBackend::Pool ? "pool"
                                                          : "legacy") +
                " gcWorkers=" + std::to_string(workers);
            EXPECT_EQ(s.reportKeys, base.reportKeys) << what;
            EXPECT_EQ(s.cycleSignatures, base.cycleSignatures) << what;
            expectSameMemStats(s.ms, base.ms, what);
        }
    }
}

// ---------------------------------------------------------------------------
// CorpusDifferential
// ---------------------------------------------------------------------------

/** Drop the /mem/* metric lines from a captured snapshot. The span
 *  gauges (/mem/spans/{retired,evicted,scavenged}:spans) report pool
 *  backend activity — legacy runs export them as zeros — so they are
 *  byte-identical across gcWorkers but deliberately NOT across
 *  backends. Both sides of a comparison get the same filter, so the
 *  remaining lines still compare exactly. */
std::string
stripMemLines(const std::string& s)
{
    std::istringstream in(s);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("/mem/") != std::string::npos ||
            line.find("golf_mem_") != std::string::npos)
            continue;
        out << line << '\n';
    }
    return out.str();
}

/** The deterministic surface of one harness run. */
void
expectSameOutcome(const RunOutcome& a, const RunOutcome& b,
                  const std::string& what)
{
    EXPECT_EQ(a.detectedPerLabel, b.detectedPerLabel) << what;
    EXPECT_EQ(a.individualReports, b.individualReports) << what;
    EXPECT_EQ(a.unexpectedReports, b.unexpectedReports) << what;
    EXPECT_EQ(a.runtimeFailure, b.runtimeFailure) << what;
    EXPECT_EQ(a.failureMessage, b.failureMessage) << what;
    EXPECT_EQ(a.gcCycles, b.gcCycles) << what;
    EXPECT_EQ(a.faultsInjected, b.faultsInjected) << what;
    EXPECT_EQ(a.containedPanics, b.containedPanics) << what;
    EXPECT_EQ(a.quarantined, b.quarantined) << what;
    EXPECT_EQ(a.faultTrace, b.faultTrace) << what;
    EXPECT_EQ(a.cancelsDelivered, b.cancelsDelivered) << what;
    EXPECT_EQ(a.cancelDeaths, b.cancelDeaths) << what;
    EXPECT_EQ(a.resurrections, b.resurrections) << what;
    EXPECT_EQ(a.watchdogTriggers, b.watchdogTriggers) << what;
}

TEST(CorpusDifferential, FullCorpusIdenticalAcrossBackends)
{
    // Every pattern in the corpus — deadlocking and correct — run
    // once per backend; the whole deterministic surface must match.
    for (const Pattern& p : Registry::instance().all()) {
        HarnessConfig cfg;
        cfg.seed = 4242;
        cfg.procs = 2;
        cfg.gcWorkers = 1;
        cfg.heap.backend = AllocBackend::Pool;
        const RunOutcome pool = runPatternOnce(p, cfg);
        cfg.heap.backend = AllocBackend::Legacy;
        const RunOutcome legacy = runPatternOnce(p, cfg);
        expectSameOutcome(pool, legacy, p.name);
    }
}

TEST(CorpusDifferential, SubsetIdenticalAcrossBackendsAndWorkers)
{
    // A corpus slice swept across gcWorkers with obs capture on: the
    // captured metrics JSON / profiles / flight CSV are the strictest
    // byte-identity surface (they embed MemStats and GC history).
    auto deadlocking = Registry::instance().deadlocking();
    auto corrects = Registry::instance().corrects();
    ASSERT_GE(deadlocking.size(), 4u);
    ASSERT_GE(corrects.size(), 2u);
    std::vector<const Pattern*> subset(deadlocking.begin(),
                                       deadlocking.begin() + 4);
    subset.push_back(corrects[0]);
    subset.push_back(corrects[1]);

    for (const Pattern* p : subset) {
        for (int workers : {1, 2, 4}) {
            HarnessConfig cfg;
            cfg.seed = 99;
            cfg.procs = 4;
            cfg.gcWorkers = workers;
            cfg.captureObs = true;
            cfg.heap.backend = AllocBackend::Pool;
            const RunOutcome pool = runPatternOnce(*p, cfg);
            cfg.heap.backend = AllocBackend::Legacy;
            const RunOutcome legacy = runPatternOnce(*p, cfg);
            const std::string what =
                p->name + " gcWorkers=" + std::to_string(workers);
            expectSameOutcome(pool, legacy, what);
            EXPECT_EQ(stripMemLines(pool.obsMetricsJson),
                      stripMemLines(legacy.obsMetricsJson))
                << what;
            EXPECT_EQ(stripMemLines(pool.obsPrometheus),
                      stripMemLines(legacy.obsPrometheus))
                << what;
            EXPECT_EQ(pool.obsGoroutineProfile,
                      legacy.obsGoroutineProfile)
                << what;
            EXPECT_EQ(pool.obsBlockProfile, legacy.obsBlockProfile)
                << what;
            EXPECT_EQ(pool.obsMutexProfile, legacy.obsMutexProfile)
                << what;
            EXPECT_EQ(pool.obsFlightCsv, legacy.obsFlightCsv) << what;
        }
    }
}

// ---------------------------------------------------------------------------
// ChaosDifferential
// ---------------------------------------------------------------------------

TEST(ChaosDifferential, ThirtyTwoSeedsByteIdenticalRepro)
{
    // 32 chaos seeds over a rotating corpus slice. Fault injection
    // consults the virtual clock and the master seed only, so the
    // per-fault decision log (the repro trace) must not notice the
    // backend — and with verifyInvariants on, every pool invariant
    // is cross-checked at each GC safepoint along the way.
    auto deadlocking = Registry::instance().deadlocking();
    ASSERT_GE(deadlocking.size(), 8u);

    int seedsWithFaults = 0;
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        const Pattern* p =
            deadlocking[static_cast<size_t>(seed) %
                        deadlocking.size()];
        HarnessConfig cfg;
        cfg.seed = seed;
        cfg.procs = 2;
        cfg.gcWorkers = (seed % 2 == 0) ? 4 : 1;
        cfg.verifyInvariants = true;
        cfg.faults.enabled = true;
        cfg.faults.forceGcProb = 0.15;
        cfg.faults.reclaimFailureProb = 0.25;
        cfg.faults.panicProb = 0.01;
        cfg.faults.allocFailProb = 0.01;
        cfg.faults.spuriousWakeupProb = 0.05;
        cfg.faults.delayedWakeupProb = 0.05;

        cfg.heap.backend = AllocBackend::Pool;
        const RunOutcome pool = runPatternOnce(*p, cfg);
        cfg.heap.backend = AllocBackend::Legacy;
        const RunOutcome legacy = runPatternOnce(*p, cfg);

        const std::string what =
            p->name + " seed=" + std::to_string(seed);
        EXPECT_TRUE(pool.invariantViolations.empty())
            << what << " pool: "
            << (pool.invariantViolations.empty()
                    ? ""
                    : pool.invariantViolations.front());
        EXPECT_TRUE(legacy.invariantViolations.empty())
            << what << " legacy: "
            << (legacy.invariantViolations.empty()
                    ? ""
                    : legacy.invariantViolations.front());
        expectSameOutcome(pool, legacy, what);
        if (!pool.faultTrace.empty())
            ++seedsWithFaults;
    }
    // Short patterns can legitimately draw zero faults; the sweep as
    // a whole must still exercise the injector heavily.
    EXPECT_GE(seedsWithFaults, 24);
}

// ---------------------------------------------------------------------------
// RaceDifferential
// ---------------------------------------------------------------------------

TEST(RaceDifferential, VerdictsIdenticalAcrossBackends)
{
    // The race detector's shadow state is keyed by address, and under
    // the pool backend addresses are recycled aggressively — the
    // free hook firing at sweep is what keeps the verdicts backend-
    // independent. Compare the full stats block and the deduplicated
    // report lines on a corpus slice.
    auto deadlocking = Registry::instance().deadlocking();
    auto corrects = Registry::instance().corrects();
    ASSERT_GE(deadlocking.size(), 3u);
    ASSERT_GE(corrects.size(), 3u);
    std::vector<const Pattern*> subset;
    for (size_t i = 0; i < 3; ++i) {
        subset.push_back(deadlocking[i]);
        subset.push_back(corrects[i]);
    }

    for (const Pattern* p : subset) {
        HarnessConfig cfg;
        cfg.seed = 7;
        cfg.procs = 2;
        cfg.gcWorkers = 1;
        cfg.race = true;
        cfg.heap.backend = AllocBackend::Pool;
        const RunOutcome pool = runPatternOnce(*p, cfg);
        cfg.heap.backend = AllocBackend::Legacy;
        const RunOutcome legacy = runPatternOnce(*p, cfg);

        const std::string what = p->name;
        expectSameOutcome(pool, legacy, what);
        EXPECT_EQ(pool.raceReportLines, legacy.raceReportLines)
            << what;
        const race::DetectorStats& a = pool.raceStats;
        const race::DetectorStats& b = legacy.raceStats;
        EXPECT_EQ(a.goroutines, b.goroutines) << what;
        EXPECT_EQ(a.syncOps, b.syncOps) << what;
        EXPECT_EQ(a.memAccesses, b.memAccesses) << what;
        EXPECT_EQ(a.lockAcquires, b.lockAcquires) << what;
        EXPECT_EQ(a.lockGraphEdges, b.lockGraphEdges) << what;
        EXPECT_EQ(a.raceInstances, b.raceInstances) << what;
        EXPECT_EQ(a.raceReports, b.raceReports) << what;
        EXPECT_EQ(a.lockOrderCycles, b.lockOrderCycles) << what;
        EXPECT_EQ(a.confirmedCycles, b.confirmedCycles) << what;
    }
}

} // namespace
} // namespace golf
