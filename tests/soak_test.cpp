/**
 * @file
 * Soak test: a large randomized end-to-end run — thousands of
 * goroutines over mixed primitives (channels, selects, mutexes,
 * waitgroups, contexts), with a controlled fraction leaking — under
 * GOLF with recovery. Asserts the big-picture contracts: every
 * injected leak is eventually reported exactly once, nothing else
 * is, memory returns to the steady state, and the runtime survives
 * the whole ride (including goroutine-pool churn).
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/context.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/mutex.hpp"
#include "sync/waitgroup.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

struct SoakStats
{
    int leaksInjected = 0;
    int healthyDone = 0;
};

Go
healthyPair(Channel<int>* ch, sync::WaitGroup* wg, SoakStats* st)
{
    co_await chan::send(ch, 1);
    ++st->healthyDone;
    wg->done();
    co_return;
}

Go
healthyRecv(Channel<int>* ch, sync::WaitGroup* wg)
{
    co_await chan::recv(ch);
    wg->done();
    co_return;
}

Go
leakyOne(Runtime* rtp, int kind)
{
    switch (kind % 3) {
      case 0:
        co_await chan::recv(makeChan<int>(*rtp, 0));
        break;
      case 1:
        co_await chan::send(makeChan<int>(*rtp, 0), 1);
        break;
      default: {
        rt::Context* ctx =
            rt::withCancel(*rtp, rt::background(*rtp));
        co_await chan::recv(ctx->done()); // cancel never called
        break;
      }
    }
    co_return;
}

Go
lockUser(sync::Mutex* mu, sync::WaitGroup* wg)
{
    co_await mu->lock();
    co_await rt::yield();
    mu->unlock();
    wg->done();
    co_return;
}

Go
soakMain(Runtime* rtp, SoakStats* st, int rounds)
{
    Runtime& rt = *rtp;
    support::Rng rng(rt.config().seed ^ 0x50AC);
    gc::Local<sync::WaitGroup> wg(rt.make<sync::WaitGroup>(rt));
    gc::Local<sync::Mutex> mu(rt.make<sync::Mutex>(rt));

    for (int round = 0; round < rounds; ++round) {
        // Healthy traffic: matched channel pairs + lock users.
        for (int i = 0; i < 6; ++i) {
            gc::Local<Channel<int>> ch(makeChan<int>(rt, 0));
            wg->add(2);
            GOLF_GO(rt, healthyPair, ch.get(), wg.get(), st);
            GOLF_GO(rt, healthyRecv, ch.get(), wg.get());
        }
        for (int i = 0; i < 3; ++i) {
            wg->add(1);
            GOLF_GO(rt, lockUser, mu.get(), wg.get());
        }
        // A leak every other round.
        if (round % 2 == 0) {
            GOLF_GO(rt, leakyOne, rtp,
                    static_cast<int>(rng.nextBelow(3)));
            ++st->leaksInjected;
        }
        co_await wg->wait(); // healthy work drains every round
        if (round % 7 == 0)
            co_await rt::gcNow();
    }
    // Final settle: enough cycles to report + reclaim all leaks.
    co_await rt::sleepFor(kMillisecond);
    co_await rt::gcNow();
    co_await rt::gcNow();
    co_return;
}

class SoakTest : public ::testing::TestWithParam<int>
{};

TEST_P(SoakTest, ThousandsOfGoroutinesWithInjectedLeaks)
{
    rt::Config cfg;
    cfg.seed = static_cast<uint64_t>(GetParam());
    cfg.procs = 1 + GetParam() % 4;
    cfg.heap.minTriggerBytes = 16 * 1024; // frequent paced GCs too
    Runtime rt(cfg);

    SoakStats stats;
    const int rounds = 150; // ~1500 goroutines
    auto result = rt.runMain(soakMain, &rt, &stats, rounds);

    EXPECT_TRUE(result.ok()) << result.panicMessage;
    EXPECT_EQ(stats.healthyDone, rounds * 6);
    // Exactly the injected leaks were reported (each once).
    EXPECT_EQ(rt.collector().reports().total(),
              static_cast<size_t>(stats.leaksInjected));
    // Everything reclaimed; memory back to the steady state (the
    // two long-lived sync objects).
    EXPECT_EQ(rt.blockedCandidates().size(), 0u);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::PendingReclaim), 0u);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Deadlocked), 0u);
    EXPECT_LE(rt.heap().liveObjects(), 4u);
    EXPECT_EQ(rt.semtable().entries(), 0u);
    // The goroutine pool kept the population bounded.
    size_t allocated = 0;
    rt.forEachGoroutine([&](rt::Goroutine*) { ++allocated; });
    EXPECT_LT(allocated, 120u) << "pool failed to recycle";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Range(1, 7));

} // namespace
} // namespace golf
