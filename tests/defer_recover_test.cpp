/**
 * @file
 * Go-style defer/recover semantics: LIFO ordering on normal return,
 * panic unwinding with recovery at the enclosing coroutine frame,
 * cleanup on forced reclaim of a deadlocked goroutine, and the
 * send-on-closed-channel panic raised from inside a select arm.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/defer.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "support/panic.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::RunResult;
using rt::Runtime;
using support::kMillisecond;

TEST(DeferTest, LifoOrderOnNormalReturn)
{
    std::vector<int> order;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](std::vector<int>* out) -> Go {
            GOLF_DEFER([out] { out->push_back(1); });
            GOLF_DEFER([out] { out->push_back(2); });
            GOLF_DEFER([out] { out->push_back(3); });
            co_await rt::yield();
            co_return;
        },
        &order);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

rt::Task<void>
innerWithDefer(std::vector<std::string>* out)
{
    GOLF_DEFER([out] { out->push_back("inner"); });
    co_await rt::yield();
    co_return;
}

TEST(DeferTest, DefersRunPerCoroutineFrame)
{
    std::vector<std::string> order;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](std::vector<std::string>* out) -> Go {
            GOLF_DEFER([out] { out->push_back("outer"); });
            co_await innerWithDefer(out);
            out->push_back("between");
            co_return;
        },
        &order);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(order, (std::vector<std::string>{"inner", "between",
                                               "outer"}));
}

TEST(DeferTest, RecoverOutsidePanicReturnsNullopt)
{
    bool sawNullopt = false;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](bool* saw) -> Go {
            EXPECT_FALSE(rt::panicking());
            EXPECT_FALSE(rt::recover().has_value());
            GOLF_DEFER([saw] {
                *saw = !rt::recover().has_value();
            });
            co_await rt::yield();
            co_return;
        },
        &sawNullopt);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(sawNullopt);
}

TEST(RecoverTest, RecoverStopsPanicAtGoroutineFrame)
{
    std::string captured;
    bool reachedAfterPanic = false;
    int delivered = 0;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, std::string* msg, bool* after,
            int* dlv) -> Go {
            GOLF_GO(*rtp, +[](std::string* m, bool* a) -> Go {
                GOLF_DEFER([m] {
                    if (auto got = rt::recover())
                        *m = *got;
                });
                support::goPanic("boom");
                *a = true; // unreachable
                co_return;
            }, msg, after);
            // A survivor sharing the scheduler keeps working.
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                for (int i = 0; i < 3; ++i)
                    co_await chan::send(c, i);
                co_return;
            }, ch.get());
            for (int i = 0; i < 3; ++i) {
                auto got = co_await chan::recv(ch.get());
                *dlv += got.ok ? 1 : 0;
            }
            co_return;
        },
        &rt, &captured, &reachedAfterPanic, &delivered);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(captured, "boom");
    EXPECT_FALSE(reachedAfterPanic);
    EXPECT_EQ(delivered, 3);
}

rt::Task<int>
panicsButRecovers(std::string* msg)
{
    GOLF_DEFER([msg] {
        if (auto got = rt::recover())
            *msg = *got;
    });
    support::goPanic("inner panic");
    co_return 42; // unreachable
}

TEST(RecoverTest, RecoverInNestedTaskYieldsZeroValue)
{
    std::string captured;
    int value = -1;
    bool continued = false;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](std::string* msg, int* out, bool* cont) -> Go {
            *out = co_await panicsButRecovers(msg);
            *cont = true;
            co_return;
        },
        &captured, &value, &continued);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(captured, "inner panic");
    EXPECT_EQ(value, 0); // Go zero value after a recovered panic
    EXPECT_TRUE(continued);
}

TEST(RecoverTest, UnrecoveredPanicFailsRun)
{
    bool deferRan = false;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, bool* ran) -> Go {
            GOLF_GO(*rtp, +[](bool* rp) -> Go {
                GOLF_DEFER([rp] { *rp = true; });
                support::goPanic("die");
                co_return;
            }, ran);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &deferRan);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.panicked);
    EXPECT_NE(r.panicMessage.find("die"), std::string::npos);
    EXPECT_TRUE(deferRan); // defers still ran during the unwind
}

TEST(RecoverTest, DefersRunLifoOnForcedReclaim)
{
    std::vector<int> order;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, std::vector<int>* out) -> Go {
            GOLF_GO(*rtp, +[](Runtime* rp,
                              std::vector<int>* o) -> Go {
                GOLF_DEFER([o] { o->push_back(1); });
                GOLF_DEFER([o] { o->push_back(2); });
                co_await chan::recv(
                    chan::makeChan<int>(*rp, 0)); // leaks forever
                co_return;
            }, rtp, out);
            co_await rt::sleepFor(kMillisecond);
            EXPECT_TRUE(out->empty());
            co_await rt::gcNow(); // detect
            co_await rt::gcNow(); // reclaim: frames unwind, defers run
            co_return;
        },
        &rt, &order);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.collector().reports().total(), 1u);
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

/** Satellite: send-on-closed-channel panic raised from a select arm.
 *  The offending goroutine unwinds (running its defers) and, with a
 *  recover, everything else keeps running. */
TEST(RecoverTest, SendOnClosedChannelInSelectArmRecovered)
{
    std::string captured;
    int delivered = 0;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, std::string* msg, int* dlv) -> Go {
            gc::Local<Channel<int>> doomed(makeChan<int>(*rtp, 0));
            gc::Local<Channel<int>> never(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* d,
                              Channel<int>* n,
                              std::string* m) -> Go {
                GOLF_DEFER([m] {
                    if (auto got = rt::recover())
                        *m = *got;
                });
                // Parks with a send case pending; the close() below
                // wakes it and the resume panics Go-style.
                co_await chan::select(chan::sendCase(d, 7),
                                      chan::recvCase(n));
                co_return;
            }, doomed.get(), never.get(), msg);
            co_await rt::sleepFor(kMillisecond);
            chan::close(doomed.get());
            co_await rt::sleepFor(kMillisecond);

            // Survivors: a full rendezvous still works.
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                for (int i = 0; i < 4; ++i)
                    co_await chan::send(c, i);
                co_return;
            }, ch.get());
            for (int i = 0; i < 4; ++i) {
                auto got = co_await chan::recv(ch.get());
                *dlv += got.ok ? 1 : 0;
            }
            co_return;
        },
        &rt, &captured, &delivered);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(captured, "send on closed channel");
    EXPECT_EQ(delivered, 4);
}

TEST(RecoverTest, SendOnClosedChannelInSelectArmUnrecovered)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<Channel<int>> doomed(makeChan<int>(*rtp, 0));
            gc::Local<Channel<int>> never(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* d, Channel<int>* n) -> Go {
                co_await chan::select(chan::sendCase(d, 7),
                                      chan::recvCase(n));
                co_return;
            }, doomed.get(), never.get());
            co_await rt::sleepFor(kMillisecond);
            chan::close(doomed.get());
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.panicked);
    EXPECT_NE(r.panicMessage.find("send on closed channel"),
              std::string::npos);
}

} // namespace
} // namespace golf
