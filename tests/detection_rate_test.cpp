/**
 * @file
 * Detection-rate regression tests: the Table 1 mechanisms pinned in
 * CI with reduced repetition counts. These protect the calibrated
 * flaky rows — a scheduler or harness change that flattens the
 * parallelism-gated races would silently wreck the Table 1 shape.
 */
#include <gtest/gtest.h>

#include "microbench/harness.hpp"
#include "microbench/registry.hpp"

namespace golf::microbench {
namespace {

/** Fraction of runs (out of `repeats`) detecting the first site. */
double
detectionRate(const char* name, int procs, int repeats,
              uint64_t seed)
{
    const Pattern* p = Registry::instance().find(name);
    if (!p)
        return -1.0;
    HarnessConfig cfg;
    cfg.procs = procs;
    cfg.seed = seed;
    auto sites = runPatternRepeated(*p, cfg, repeats);
    if (sites.empty())
        return -1.0;
    return static_cast<double>(sites[0].detectedRuns) /
           static_cast<double>(sites[0].totalRuns);
}

TEST(DetectionRateTest, Grpc3017IsParallelismGated)
{
    // Never manifests on one virtual core (FIFO wakeups), (almost)
    // always on two or more.
    EXPECT_EQ(detectionRate("grpc/3017", 1, 25, 5), 0.0);
    EXPECT_GE(detectionRate("grpc/3017", 2, 25, 5), 0.9);
    EXPECT_GE(detectionRate("grpc/3017", 4, 25, 5), 0.9);
}

TEST(DetectionRateTest, Etcd7443IsNearZero)
{
    // The tightest race of the corpus: essentially invisible below
    // eight-way parallelism, rare even at ten.
    EXPECT_LE(detectionRate("etcd/7443", 1, 25, 7), 0.04);
    EXPECT_LE(detectionRate("etcd/7443", 4, 25, 7), 0.04);
    EXPECT_LE(detectionRate("etcd/7443", 10, 50, 7), 0.15);
}

TEST(DetectionRateTest, Cockroach6181IsHighButNotPerfect)
{
    double rate = detectionRate("cockroach/6181", 2, 60, 11);
    EXPECT_GE(rate, 0.85);
    // With p=0.6 per instance and 4 instances, misses do occur over
    // enough runs; do not assert < 1.0 on a small sample, but the
    // single-instance probability must stay well below 1.
    const Pattern* p = Registry::instance().find("cockroach/6181");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->flakiness, 100);
}

TEST(DetectionRateTest, Moby27282SitsInTheEightiesBand)
{
    double total = 0;
    for (int procs : {1, 2, 4, 10})
        total += detectionRate("moby/27282", procs, 40, 13);
    double avg = total / 4.0;
    EXPECT_GE(avg, 0.70); // paper: 82.75%
    EXPECT_LE(avg, 0.95);
}

TEST(DetectionRateTest, DeterministicRowsAreAlwaysDetected)
{
    for (const char* name :
         {"cgo/ex1", "cockroach/584", "kubernetes/58107",
          "moby/21233", "syncthing/5795", "istio/18454"}) {
        for (int procs : {1, 4}) {
            EXPECT_EQ(detectionRate(name, procs, 10, 17), 1.0)
                << name << " procs=" << procs;
        }
    }
}

TEST(DetectionRateTest, CorrectVariantsNeverFire)
{
    for (const Pattern* p : Registry::instance().corrects()) {
        HarnessConfig cfg;
        cfg.procs = 4;
        cfg.seed = 19;
        RunOutcome out = runPatternOnce(*p, cfg);
        EXPECT_EQ(out.individualReports, 0u) << p->name;
    }
}

} // namespace
} // namespace golf::microbench
