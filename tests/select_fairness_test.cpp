/**
 * @file
 * Select fairness: when several cases are simultaneously ready, Go
 * chooses uniformly at random. Our select shuffles its polling order
 * with the scheduler RNG; across seeds, every ready case must win a
 * non-trivial share — a skew would systematically hide bugs that
 * need the "unlucky" branch (the GFuzz observation).
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;

TEST(SelectFairnessTest, ReadyCasesChosenRoughlyUniformly)
{
    int wins[3] = {0, 0, 0};
    for (uint64_t seed = 1; seed <= 300; ++seed) {
        rt::Config cfg;
        cfg.seed = seed;
        Runtime rt(cfg);
        rt.runMain(
            +[](Runtime* rtp, int* w) -> Go {
                auto* a = makeChan<int>(*rtp, 1);
                auto* b = makeChan<int>(*rtp, 1);
                auto* c = makeChan<int>(*rtp, 1);
                co_await chan::send(a, 1);
                co_await chan::send(b, 2);
                co_await chan::send(c, 3);
                int idx = co_await chan::select(chan::recvCase(a),
                                                chan::recvCase(b),
                                                chan::recvCase(c));
                ++w[idx];
                co_return;
            },
            &rt, wins);
    }
    // Each of the three ready cases should win 100 +- wide margin.
    for (int i = 0; i < 3; ++i) {
        EXPECT_GT(wins[i], 50) << "case " << i << " starved";
        EXPECT_LT(wins[i], 200) << "case " << i << " dominated";
    }
    EXPECT_EQ(wins[0] + wins[1] + wins[2], 300);
}

TEST(SelectFairnessTest, RepeatedSelectInOneRunVariesChoices)
{
    // Within a single run the RNG advances, so back-to-back selects
    // over the same ready pair must not always pick the same case.
    Runtime rt;
    int first = 0, second = 0;
    rt.runMain(
        +[](Runtime* rtp, int* f, int* s) -> Go {
            gc::Local<Channel<int>> a(makeChan<int>(*rtp, 200));
            gc::Local<Channel<int>> b(makeChan<int>(*rtp, 200));
            for (int i = 0; i < 200; ++i) {
                co_await chan::send(a.get(), i);
                co_await chan::send(b.get(), i);
            }
            for (int i = 0; i < 200; ++i) {
                int idx = co_await chan::select(
                    chan::recvCase(a.get()), chan::recvCase(b.get()));
                ++(idx == 0 ? *f : *s);
            }
            co_return;
        },
        &rt, &first, &second);
    EXPECT_GT(first, 40);
    EXPECT_GT(second, 40);
    EXPECT_EQ(first + second, 200);
}

TEST(SelectFairnessTest, BlockedSelectWokenByWhicheverFiresFirst)
{
    // Two producers racing to wake the same parked select: across
    // seeds both producers must win sometimes.
    int wins[2] = {0, 0};
    for (uint64_t seed = 1; seed <= 120; ++seed) {
        rt::Config cfg;
        cfg.seed = seed;
        cfg.procs = 2;
        Runtime rt(cfg);
        rt.runMain(
            +[](Runtime* rtp, int* w) -> Go {
                gc::Local<Channel<int>> a(makeChan<int>(*rtp, 0));
                gc::Local<Channel<int>> b(makeChan<int>(*rtp, 0));
                support::VTime wake =
                    rtp->clock().now() + support::kMillisecond;
                auto racer = +[](Channel<int>* c,
                                 support::VTime at) -> Go {
                    co_await rt::sleepUntil(at);
                    co_await chan::select(chan::sendCase(c, 1),
                                          chan::defaultCase());
                    co_return;
                };
                GOLF_GO(*rtp, racer, a.get(), wake);
                GOLF_GO(*rtp, racer, b.get(), wake);
                int idx = co_await chan::select(
                    chan::recvCase(a.get()), chan::recvCase(b.get()));
                ++w[idx];
                co_await rt::sleepFor(2 * support::kMillisecond);
                co_return;
            },
            &rt, wins);
    }
    EXPECT_GT(wins[0], 15);
    EXPECT_GT(wins[1], 15);
}

} // namespace
} // namespace golf
