/**
 * @file
 * Report plumbing tests: the "partial deadlock!" message format,
 * dedup keys, the live sink (RQ1(c)'s logging-infrastructure hook),
 * and JSON emission.
 */
#include <gtest/gtest.h>

#include <fstream>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

detect::DeadlockReport
sampleReport()
{
    detect::DeadlockReport r;
    r.goroutineId = 12;
    r.reason = rt::WaitReason::ChanSend;
    r.spawnSite = rt::Site{"svc.go", 104, "SendEmail"};
    r.blockSite = rt::Site{"svc.go", 105, "func1"};
    r.stackBytes = 256;
    r.gcCycle = 3;
    r.vtime = 5000;
    return r;
}

TEST(ReportTest, MessageFormat)
{
    std::string msg = sampleReport().str();
    EXPECT_NE(msg.find("partial deadlock!"), std::string::npos);
    EXPECT_NE(msg.find("goroutine 12"), std::string::npos);
    EXPECT_NE(msg.find("chan send"), std::string::npos);
    EXPECT_NE(msg.find("Stack size 256"), std::string::npos);
    EXPECT_NE(msg.find("svc.go:104"), std::string::npos);
    EXPECT_NE(msg.find("svc.go:105"), std::string::npos);
}

TEST(ReportTest, DedupKeyPairsSpawnAndBlock)
{
    EXPECT_EQ(sampleReport().dedupKey(), "svc.go:104|svc.go:105");
}

TEST(ReportTest, JsonFields)
{
    std::string j = sampleReport().json();
    EXPECT_NE(j.find("\"goroutine\":12"), std::string::npos);
    EXPECT_NE(j.find("\"reason\":\"chan send\""), std::string::npos);
    EXPECT_NE(j.find("\"spawn\":\"svc.go:104\""), std::string::npos);
    EXPECT_NE(j.find("\"stack_bytes\":256"), std::string::npos);
    EXPECT_NE(j.find("\"gc_cycle\":3"), std::string::npos);
}

TEST(ReportTest, SinkFiresPerReportAsTheyHappen)
{
    Runtime rt;
    std::vector<std::string> logged;
    rt.collector().reports().setSink(
        [&](const detect::DeadlockReport& r) {
            logged.push_back(r.json());
        });
    rt.runMain(+[](Runtime* rtp) -> Go {
        for (int i = 0; i < 3; ++i) {
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                co_await chan::recv(c);
                co_return;
            }, makeChan<int>(*rtp, 0));
        }
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_return;
    }, &rt);
    EXPECT_EQ(logged.size(), 3u);
    for (const auto& line : logged)
        EXPECT_NE(line.find("chan receive"), std::string::npos);
}

TEST(ReportTest, WriteJsonArray)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        for (int i = 0; i < 2; ++i) {
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                co_await chan::send(c, 1);
                co_return;
            }, makeChan<int>(*rtp, 0));
        }
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_return;
    }, &rt);

    std::string path = "/tmp/golfcc_reports_test.json";
    rt.collector().reports().writeJson(path);
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(all.front(), '[');
    size_t objects = 0;
    for (size_t pos = 0;
         (pos = all.find("\"goroutine\"", pos)) != std::string::npos;
         ++pos)
        ++objects;
    EXPECT_EQ(objects, 2u);
}

} // namespace
} // namespace golf
