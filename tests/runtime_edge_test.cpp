/**
 * @file
 * Edge-case tests: goroutine dumps, timer/ticker corner cases,
 * select-on-closed-while-parked paths, channel close with parked
 * select senders, after()-channel collection once fired, and the
 * scheduler's behavior with zero work.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "runtime/timeapi.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

TEST(DumpTest, ListsBlockedGoroutinesWithSites)
{
    Runtime rt;
    std::string dump;
    rt.runMain(
        +[](Runtime* rtp, std::string* out) -> Go {
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                co_await chan::recv(c);
                co_return;
            }, ch.get());
            co_await rt::sleepFor(kMillisecond);
            *out = rtp->dumpGoroutines();
            co_await chan::send(ch.get(), 1);
            co_return;
        },
        &rt, &dump);
    EXPECT_NE(dump.find("chan receive"), std::string::npos);
    EXPECT_NE(dump.find("blocked at"), std::string::npos);
    EXPECT_NE(dump.find("created by"), std::string::npos);
    EXPECT_NE(dump.find("runtime_edge_test.cpp"), std::string::npos);
}

TEST(DumpTest, MarksBlockedForever)
{
    Runtime rt;
    std::string dump;
    rt.runMain(
        +[](Runtime* rtp, std::string* out) -> Go {
            GOLF_GO(*rtp, +[]() -> Go {
                co_await chan::selectForever();
                co_return;
            });
            co_await rt::sleepFor(kMillisecond);
            *out = rtp->dumpGoroutines();
            co_return;
        },
        &rt, &dump);
    EXPECT_NE(dump.find("blocked forever"), std::string::npos);
}

TEST(TimeEdgeTest, AfterChannelCollectedOnceFiredAndDropped)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        auto* t = rt::after(*rtp, kMillisecond);
        co_await chan::recv(t);
        // The channel is no longer pinned by the timer nor held by
        // anyone: collectable.
        co_await rt::gcNow();
        EXPECT_EQ(rtp->heap().liveObjects(), 0u);
        co_return;
    }, &rt);
}

TEST(TimeEdgeTest, UnfiredAfterChannelIsPinned)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        rt::after(*rtp, 50 * kMillisecond); // dropped immediately
        co_await rt::gcNow();
        // Still pinned by the pending timer.
        EXPECT_EQ(rtp->heap().liveObjects(), 1u);
        co_await rt::sleepFor(100 * kMillisecond);
        co_await rt::gcNow();
        EXPECT_EQ(rtp->heap().liveObjects(), 0u);
        co_return;
    }, &rt);
}

TEST(TimeEdgeTest, StoppedTickerIsCollectable)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        rt::Ticker* t = rt::makeTicker(*rtp, kMillisecond);
        co_await chan::recv(t->c());
        t->stop();
        co_await rt::gcNow();
        EXPECT_EQ(rtp->heap().liveObjects(), 0u);
        // Time passes; the cancelled timer must not fire into freed
        // memory (poisoning would crash deterministically).
        co_await rt::sleepFor(10 * kMillisecond);
        co_return;
    }, &rt);
}

TEST(SelectEdgeTest, ParkedRecvCaseWokenByClose)
{
    Runtime rt;
    bool ok = true;
    int idx = -7;
    rt.runMain(
        +[](Runtime* rtp, bool* okp, int* idxp) -> Go {
            gc::Local<Channel<int>> a(makeChan<int>(*rtp, 0));
            gc::Local<Channel<int>> b(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* ca, Channel<int>* cb,
                              bool* o, int* ix) -> Go {
                int v = 0;
                *ix = co_await chan::select(chan::recvCase(ca, &v, o),
                                            chan::recvCase(cb, &v));
                co_return;
            }, a.get(), b.get(), okp, idxp);
            co_await rt::sleepFor(kMillisecond);
            chan::close(a.get());
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &ok, &idx);
    EXPECT_EQ(idx, 0);
    EXPECT_FALSE(ok); // closed: ok=false
}

TEST(SelectEdgeTest, ParkedSendCaseWokenByClosePanics)
{
    Runtime rt;
    auto r = rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<Channel<int>> a(makeChan<int>(*rtp, 0));
        gc::Local<Channel<int>> b(makeChan<int>(*rtp, 0));
        GOLF_GO(*rtp, +[](Channel<int>* ca, Channel<int>* cb) -> Go {
            co_await chan::select(chan::sendCase(ca, 1),
                                  chan::recvCase(cb));
            co_return;
        }, a.get(), b.get());
        co_await rt::sleepFor(kMillisecond);
        chan::close(a.get()); // send case fires -> panics
        co_await rt::sleepFor(kMillisecond);
        co_return;
    }, &rt);
    EXPECT_TRUE(r.panicked);
    EXPECT_EQ(r.panicMessage, "send on closed channel");
}

TEST(SelectEdgeTest, DefaultWithAllNilChannels)
{
    Runtime rt;
    rt.runMain(+[](Runtime*) -> Go {
        int idx = co_await chan::select(
            chan::recvCase(static_cast<Channel<int>*>(nullptr)),
            chan::defaultCase());
        EXPECT_EQ(idx, chan::kSelectDefault);
        co_return;
    }, &rt);
}

TEST(SelectEdgeTest, AllNilWithoutDefaultBlocksForeverAndIsDetected)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[]() -> Go {
            co_await chan::select(
                chan::recvCase(static_cast<Channel<int>*>(nullptr)),
                chan::sendCase(static_cast<Channel<int>*>(nullptr),
                               1));
            co_return;
        });
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        EXPECT_EQ(rtp->collector().reports().total(), 1u);
        co_return;
    }, &rt);
}

TEST(SchedulerEdgeTest, EmptyMainCompletesInstantly)
{
    Runtime rt;
    auto r = rt.runMain(+[]() -> Go { co_return; });
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.globalDeadlock);
}

TEST(SchedulerEdgeTest, ZeroSleepStillYields)
{
    Runtime rt;
    std::vector<int> order;
    rt.runMain(
        +[](Runtime* rtp, std::vector<int>* o) -> Go {
            GOLF_GO(*rtp, +[](std::vector<int>* out) -> Go {
                out->push_back(1);
                co_return;
            }, o);
            co_await rt::sleepFor(0);
            o->push_back(2);
            co_return;
        },
        &rt, &order);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerEdgeTest, DeeplyNestedTasksUnwindCleanly)
{
    // A recursion of Task frames; forced teardown at runtime
    // destruction must unwind the whole chain without leaks
    // (frame accounting returns to zero).
    struct Helper
    {
        static rt::Task<int>
        countdown(int n)
        {
            if (n == 0)
                co_return 0;
            co_await rt::yield();
            int below = co_await countdown(n - 1);
            co_return below + 1;
        }
    };
    Runtime rt;
    int result = -1;
    rt.runMain(
        +[](int* out) -> Go {
            *out = co_await Helper::countdown(40);
            co_return;
        },
        &result);
    EXPECT_EQ(result, 40);
    EXPECT_EQ(rt.memStats().stackInuse, 0u);
}

TEST(SchedulerEdgeTest, AbandonedNestedTaskChainDestroyedAtTeardown)
{
    struct Helper
    {
        static rt::Task<void>
        blockForever(Runtime* rtp, int depth)
        {
            if (depth == 0) {
                co_await chan::recv(makeChan<int>(*rtp, 0));
                co_return;
            }
            co_await blockForever(rtp, depth - 1);
            co_return;
        }
    };
    {
        Runtime rt;
        rt.runMain(+[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[](Runtime* rp) -> Go {
                co_await Helper::blockForever(rp, 10);
                co_return;
            }, rtp);
            co_await rt::sleepFor(kMillisecond);
            co_return; // abandon the nested chain
        }, &rt);
        // Destructor unwinds 11 frames + waiter; must not crash.
    }
    SUCCEED();
}

} // namespace
} // namespace golf
