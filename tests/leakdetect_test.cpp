/**
 * @file
 * Tests for the comparison baselines: GOLEAK (test-end lingering
 * goroutine inspection) and LeakProf (blocked-concentration
 * profiling), including LeakProf's by-design false positives and
 * false negatives, which GOLF avoids.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "leakdetect/goleak.hpp"
#include "leakdetect/leakprof.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

Go
stuckReceiver(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

TEST(GoLeakTest, CleanRunReportsNothing)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
        GOLF_GO(*rtp, stuckReceiver, ch.get());
        co_await rt::sleepFor(kMillisecond);
        co_await chan::send(ch.get(), 1);
        co_await rt::sleepFor(kMillisecond);
        co_return;
    }, &rt);
    EXPECT_EQ(leakdetect::findLeaks(rt).total(), 0u);
}

TEST(GoLeakTest, FindsLingeringGoroutines)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        for (int i = 0; i < 3; ++i)
            GOLF_GO(*rtp, stuckReceiver, makeChan<int>(*rtp, 0));
        co_await rt::sleepFor(kMillisecond);
        co_return;
    }, &rt);
    auto leaks = leakdetect::findLeaks(rt);
    EXPECT_EQ(leaks.total(), 3u);
    EXPECT_EQ(leaks.dedupCounts().size(), 1u); // same (spawn, block)
    for (const auto& l : leaks.leaks)
        EXPECT_EQ(l.reason, rt::WaitReason::ChanRecv);
}

TEST(GoLeakTest, ExcludesSleepAndIoBlockedGoroutines)
{
    // The paper's fairness filter: IO waits and runaway-live
    // goroutines are not counted in the comparison.
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[]() -> Go {
            co_await rt::sleepFor(3600 * support::kSecond);
            co_return;
        });
        GOLF_GO(*rtp, +[]() -> Go {
            co_await rt::ioWait(3600 * support::kSecond);
            co_return;
        });
        co_await rt::sleepFor(kMillisecond);
        co_return;
    }, &rt);
    EXPECT_EQ(leakdetect::findLeaks(rt).total(), 0u);
}

TEST(GoLeakTest, SeesEverythingGolfSees)
{
    // All GOLF detections are a subset of GOLEAK's by design: a
    // goroutine GOLF flagged (Deadlocked / PendingReclaim) is still
    // lingering when GOLEAK scans.
    rt::Config cfg;
    cfg.recovery = rt::Recovery::ReportOnly;
    Runtime rt(cfg);
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, stuckReceiver, makeChan<int>(*rtp, 0));
        GOLF_GO(*rtp, stuckReceiver, makeChan<int>(*rtp, 0));
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_return;
    }, &rt);
    size_t golfFound = rt.collector().reports().total();
    auto leaks = leakdetect::findLeaks(rt);
    EXPECT_EQ(golfFound, 2u);
    EXPECT_GE(leaks.total(), golfFound);
}

// --------------------------------------------------------- LeakProf

TEST(LeakProfTest, FlagsHighConcentrationSites)
{
    Runtime rt;
    leakdetect::LeakProf prof(5);
    rt.runMain(+[](Runtime* rtp, leakdetect::LeakProf* p) -> Go {
        for (int i = 0; i < 8; ++i)
            GOLF_GO(*rtp, stuckReceiver, makeChan<int>(*rtp, 0));
        co_await rt::sleepFor(kMillisecond);
        p->sample(*rtp);
        co_return;
    }, &rt, &prof);
    ASSERT_EQ(prof.suspects().size(), 1u);
    EXPECT_EQ(prof.suspects()[0].blockedCount, 8u);
}

TEST(LeakProfTest, FalseNegativeBelowThreshold)
{
    // A slow leak never crosses the threshold: LeakProf misses what
    // GOLF reports exactly.
    Runtime rt;
    leakdetect::LeakProf prof(5);
    rt.runMain(+[](Runtime* rtp, leakdetect::LeakProf* p) -> Go {
        GOLF_GO(*rtp, stuckReceiver, makeChan<int>(*rtp, 0));
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        p->sample(*rtp);
        co_return;
    }, &rt, &prof);
    EXPECT_TRUE(prof.suspects().empty());           // LeakProf: miss
    EXPECT_EQ(rt.collector().reports().total(), 1u); // GOLF: hit
}

TEST(LeakProfTest, FalsePositiveOnHealthyCongestion)
{
    // Many goroutines legitimately parked at one operation trip the
    // threshold even though all of them are live; GOLF stays silent.
    Runtime rt;
    leakdetect::LeakProf prof(5);
    rt.runMain(+[](Runtime* rtp, leakdetect::LeakProf* p) -> Go {
        gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
        for (int i = 0; i < 10; ++i)
            GOLF_GO(*rtp, stuckReceiver, ch.get());
        co_await rt::sleepFor(kMillisecond);
        p->sample(*rtp);
        co_await rt::gcNow();
        EXPECT_EQ(rtp->collector().reports().total(), 0u);
        for (int i = 0; i < 10; ++i)
            co_await chan::send(ch.get(), i);
        co_await rt::sleepFor(kMillisecond);
        co_return;
    }, &rt, &prof);
    EXPECT_EQ(prof.suspects().size(), 1u); // LeakProf cried wolf
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Waiting), 0u);
}

TEST(LeakProfTest, EverFlaggedAccumulatesAcrossSamples)
{
    Runtime rt;
    leakdetect::LeakProf prof(2);
    rt.runMain(+[](Runtime* rtp, leakdetect::LeakProf* p) -> Go {
        gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
        for (int i = 0; i < 3; ++i)
            GOLF_GO(*rtp, stuckReceiver, ch.get());
        co_await rt::sleepFor(kMillisecond);
        p->sample(*rtp);
        for (int i = 0; i < 3; ++i)
            co_await chan::send(ch.get(), i);
        co_await rt::sleepFor(kMillisecond);
        p->sample(*rtp); // congestion resolved
        co_return;
    }, &rt, &prof);
    EXPECT_EQ(prof.samplesTaken(), 2u);
    EXPECT_TRUE(prof.suspects().empty());
    EXPECT_EQ(prof.everFlagged().size(), 1u);
}

} // namespace
} // namespace golf
