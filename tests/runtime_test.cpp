/**
 * @file
 * Runtime core tests: spawning, scheduling, sleeping, yielding,
 * nested Task calls, goroutine reuse, panics, global deadlock
 * detection, frame accounting.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "runtime/timeapi.hpp"

namespace golf {
namespace {

using rt::Config;
using rt::GStatus;
using rt::Go;
using rt::Runtime;
using rt::RunResult;
using support::kMillisecond;
using support::kSecond;

int gCounter = 0;

Go
bumpCounter(int amount)
{
    gCounter += amount;
    co_return;
}

TEST(RuntimeTest, MainRunsToCompletion)
{
    gCounter = 0;
    Runtime rt;
    RunResult r = rt.runMain(bumpCounter, 5);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.mainCompleted);
    EXPECT_EQ(gCounter, 5);
}

Go
spawnChildren(Runtime* rt, int n)
{
    for (int i = 0; i < n; ++i)
        GOLF_GO(*rt, bumpCounter, 1);
    // Children are abandoned if main exits immediately; yield until
    // they have run.
    for (int i = 0; i < n + 2; ++i)
        co_await rt::yield();
    co_return;
}

TEST(RuntimeTest, SpawnedGoroutinesRun)
{
    gCounter = 0;
    Runtime rt;
    RunResult r = rt.runMain(spawnChildren, &rt, 10);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(gCounter, 10);
}

TEST(RuntimeTest, MainExitAbandonsRunnableGoroutines)
{
    gCounter = 0;
    Runtime rt;
    // Spawn but never yield: children never get a slice.
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            for (int i = 0; i < 3; ++i)
                GOLF_GO(*rtp, bumpCounter, 1);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(gCounter, 0);
}

Go
sleeper(Runtime* /*rt*/, int* order, int tag)
{
    co_await rt::sleepFor(tag * kMillisecond);
    *order = *order * 10 + tag;
    co_return;
}

TEST(RuntimeTest, SleepWakesInDeadlineOrder)
{
    int order = 0;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* orderp) -> Go {
            GOLF_GO(*rtp, sleeper, rtp, orderp, 3);
            GOLF_GO(*rtp, sleeper, rtp, orderp, 1);
            GOLF_GO(*rtp, sleeper, rtp, orderp, 2);
            co_await rt::sleepFor(10 * kMillisecond);
            co_return;
        },
        &rt, &order);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(order, 123);
}

TEST(RuntimeTest, VirtualClockAdvancesDuringSleep)
{
    Runtime rt;
    rt.runMain(+[]() -> Go {
        co_await rt::sleepFor(5 * kSecond);
        co_return;
    });
    EXPECT_GE(rt.clock().now(), 5 * kSecond);
}

rt::Task<int>
addAsync(int a, int b)
{
    co_await rt::yield();
    co_return a + b;
}

rt::Task<int>
addTwice(int a, int b)
{
    int first = co_await addAsync(a, b);
    int second = co_await addAsync(first, b);
    co_return second;
}

TEST(RuntimeTest, NestedTasksReturnValues)
{
    int result = 0;
    Runtime rt;
    RunResult r = rt.runMain(
        +[](int* out) -> Go {
            *out = co_await addTwice(1, 2);
            co_return;
        },
        &result);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(result, 5);
}

TEST(RuntimeTest, GlobalDeadlockIsFatal)
{
    Runtime rt;
    RunResult r = rt.runMain(+[](Runtime* rtp) -> Go {
        auto* ch = chan::makeChan<int>(*rtp, 0);
        co_await chan::recv(ch); // nobody will ever send
        co_return;
    }, &rt);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.globalDeadlock);
    EXPECT_FALSE(r.mainCompleted);
}

TEST(RuntimeTest, GoroutinePanicStopsRun)
{
    Runtime rt;
    RunResult r = rt.runMain(+[]() -> Go {
        support::goPanic("boom");
        co_return;
    });
    EXPECT_TRUE(r.panicked);
    EXPECT_EQ(r.panicMessage, "boom");
}

TEST(RuntimeTest, GoroutineObjectsAreReused)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            for (int round = 0; round < 5; ++round) {
                for (int i = 0; i < 4; ++i)
                    GOLF_GO(*rtp, bumpCounter, 0);
                for (int i = 0; i < 8; ++i)
                    co_await rt::yield();
            }
            co_return;
        },
        &rt);
    // 5 rounds x 4 goroutines + main ran, but the pool should have
    // kept the peak allocation near 4-5 Goroutine objects.
    size_t total = 0;
    rt.forEachGoroutine([&](rt::Goroutine*) { ++total; });
    EXPECT_LE(total, 8u);
}

TEST(RuntimeTest, FreshGoroutineIdsAfterReuse)
{
    Runtime rt;
    std::vector<uint64_t> ids;
    rt.runMain(
        +[](Runtime* rtp, std::vector<uint64_t>* idsp) -> Go {
            for (int round = 0; round < 3; ++round) {
                rt::Goroutine* g = GOLF_GO(*rtp, bumpCounter, 0);
                idsp->push_back(g->id());
                co_await rt::yield();
                co_await rt::yield();
            }
            co_return;
        },
        &rt, &ids);
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_NE(ids[0], ids[1]);
    EXPECT_NE(ids[1], ids[2]);
}

TEST(RuntimeTest, FrameBytesTracked)
{
    Runtime rt;
    EXPECT_EQ(rt.memStats().stackInuse, 0u);
    rt.runMain(+[](Runtime* rtp) -> Go {
        rt::Goroutine* g = GOLF_GO(*rtp, bumpCounter, 1);
        EXPECT_GT(g->frameBytes(), 0u);
        EXPECT_GT(rtp->memStats().stackInuse, 0u);
        co_await rt::yield();
        co_return;
    }, &rt);
    // All frames destroyed after the run.
    EXPECT_EQ(rt.memStats().stackInuse, 0u);
}

TEST(RuntimeTest, BusyAdvancesVirtualClock)
{
    Runtime rt;
    rt.runMain(+[]() -> Go {
        rt::busy(100 * kMillisecond);
        co_return;
    });
    EXPECT_GE(rt.clock().now(), 100 * kMillisecond);
}

TEST(RuntimeTest, IoWaitIsNotDeadlockCandidate)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[]() -> Go {
            co_await rt::ioWait(2 * kMillisecond);
            co_return;
        });
        co_await rt::sleepFor(1 * kMillisecond);
        EXPECT_EQ(rtp->blockedCandidates().size(), 0u);
        co_await rt::sleepFor(5 * kMillisecond);
        co_return;
    }, &rt);
}

TEST(RuntimeTest, MultipleSequentialRuns)
{
    gCounter = 0;
    Runtime rt;
    EXPECT_TRUE(rt.runMain(bumpCounter, 1).ok());
    EXPECT_TRUE(rt.runMain(bumpCounter, 2).ok());
    EXPECT_EQ(gCounter, 3);
}

TEST(SchedulerTest, ProcsAffectInterleaving)
{
    // The same seeded program produces different completion orders
    // under different virtual core counts.
    auto run = [](int procs) {
        std::vector<int> order;
        Config cfg;
        cfg.procs = procs;
        cfg.seed = 99;
        Runtime rt(cfg);
        rt.runMain(
            +[](Runtime* rtp, std::vector<int>* orderp) -> Go {
                for (int i = 0; i < 6; ++i) {
                    GOLF_GO(*rtp, +[](std::vector<int>* op, int tag)
                        -> Go {
                        co_await rt::yield();
                        op->push_back(tag);
                        co_return;
                    }, orderp, i);
                }
                for (int i = 0; i < 16; ++i)
                    co_await rt::yield();
                co_return;
            },
            &rt, &order);
        return order;
    };
    auto o1 = run(1);
    auto o4 = run(4);
    ASSERT_EQ(o1.size(), 6u);
    ASSERT_EQ(o4.size(), 6u);
    EXPECT_NE(o1, o4);
}

TEST(SchedulerTest, SingleProcSpawnOrderFifo)
{
    std::vector<int> order;
    Config cfg;
    cfg.procs = 1;
    Runtime rt(cfg);
    rt.runMain(
        +[](Runtime* rtp, std::vector<int>* orderp) -> Go {
            for (int i = 0; i < 5; ++i) {
                GOLF_GO(*rtp, +[](std::vector<int>* op, int tag) -> Go {
                    op->push_back(tag);
                    co_return;
                }, orderp, i);
            }
            for (int i = 0; i < 8; ++i)
                co_await rt::yield();
            co_return;
        },
        &rt, &order);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimeApiTest, AfterFires)
{
    Runtime rt;
    bool fired = false;
    rt.runMain(
        +[](Runtime* rtp, bool* firedp) -> Go {
            auto* ch = rt::after(*rtp, 3 * kMillisecond);
            auto r = co_await chan::recv(ch);
            *firedp = r.ok;
            co_return;
        },
        &rt, &fired);
    EXPECT_TRUE(fired);
    EXPECT_GE(rt.clock().now(), 3 * kMillisecond);
}

TEST(TimeApiTest, TickerDeliversAndStops)
{
    Runtime rt;
    int ticks = 0;
    rt.runMain(
        +[](Runtime* rtp, int* ticksp) -> Go {
            rt::Ticker* t = rt::makeTicker(*rtp, 2 * kMillisecond);
            for (int i = 0; i < 3; ++i) {
                co_await chan::recv(t->c());
                ++*ticksp;
            }
            t->stop();
            co_return;
        },
        &rt, &ticks);
    EXPECT_EQ(ticks, 3);
}

} // namespace
} // namespace golf
