/**
 * @file
 * Channel and select semantics tests, following Section 2 of the
 * paper: unbuffered rendezvous, buffered capacity, close semantics,
 * nil channels, range-style draining, select with/without default.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "runtime/timeapi.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using rt::RunResult;
using support::kMillisecond;

Go
sendOne(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

Go
recvInto(Channel<int>* ch, int* out)
{
    auto r = co_await chan::recv(ch);
    *out = r.value;
    co_return;
}

TEST(ChannelTest, UnbufferedRendezvous)
{
    Runtime rt;
    int got = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* gotp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, sendOne, ch, 42);
            auto rr = co_await chan::recv(ch);
            EXPECT_TRUE(rr.ok);
            *gotp = rr.value;
            co_return;
        },
        &rt, &got);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(got, 42);
}

TEST(ChannelTest, UnbufferedSenderBlocksUntilReceiver)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            rt::Goroutine* sender = GOLF_GO(*rtp, sendOne, ch, 1);
            co_await rt::yield();
            co_await rt::yield();
            EXPECT_EQ(sender->status(), rt::GStatus::Waiting);
            EXPECT_EQ(sender->waitReason(), rt::WaitReason::ChanSend);
            EXPECT_EQ(sender->blockedOn().size(), 1u);
            EXPECT_EQ(sender->blockedOn()[0],
                      static_cast<gc::Object*>(ch));
            auto rr = co_await chan::recv(ch);
            EXPECT_EQ(rr.value, 1);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(ChannelTest, BufferedSendDoesNotBlockUntilFull)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 2);
            co_await chan::send(ch, 1);
            co_await chan::send(ch, 2);
            EXPECT_EQ(ch->size(), 2u);
            EXPECT_EQ((co_await chan::recv(ch)).value, 1);
            EXPECT_EQ((co_await chan::recv(ch)).value, 2);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(ChannelTest, BufferedFifoThroughBlockedSender)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 1);
            co_await chan::send(ch, 1);       // fills the buffer
            GOLF_GO(*rtp, sendOne, ch, 2);    // blocks: buffer full
            co_await rt::yield();
            co_await rt::yield();
            // Receiving 1 must unblock the sender, whose 2 lands in
            // the buffer preserving FIFO order.
            EXPECT_EQ((co_await chan::recv(ch)).value, 1);
            EXPECT_EQ((co_await chan::recv(ch)).value, 2);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(ChannelTest, CloseWakesReceiverWithZeroValue)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                co_await rt::sleepFor(kMillisecond);
                chan::close(c);
                co_return;
            }, ch);
            auto rr = co_await chan::recv(ch);
            EXPECT_FALSE(rr.ok);
            EXPECT_EQ(rr.value, 0);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(ChannelTest, RecvDrainsBufferBeforeReportingClosed)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 2);
            co_await chan::send(ch, 7);
            co_await chan::send(ch, 8);
            chan::close(ch);
            auto a = co_await chan::recv(ch);
            EXPECT_TRUE(a.ok);
            EXPECT_EQ(a.value, 7);
            auto b = co_await chan::recv(ch);
            EXPECT_TRUE(b.ok);
            EXPECT_EQ(b.value, 8);
            auto c = co_await chan::recv(ch);
            EXPECT_FALSE(c.ok);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(ChannelTest, SendOnClosedChannelPanics)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 1);
            chan::close(ch);
            co_await chan::send(ch, 1);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.panicked);
    EXPECT_EQ(r.panicMessage, "send on closed channel");
}

TEST(ChannelTest, CloseWakesBlockedSenderWithPanic)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, sendOne, ch, 1);
            co_await rt::yield();
            co_await rt::yield();
            chan::close(ch);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.panicked);
    EXPECT_EQ(r.panicMessage, "send on closed channel");
}

TEST(ChannelTest, DoubleClosePanics)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            chan::close(ch);
            chan::close(ch);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.panicked);
    EXPECT_EQ(r.panicMessage, "close of closed channel");
}

TEST(ChannelTest, NilChannelBlocksForever)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[]() -> Go {
                co_await chan::recv(static_cast<Channel<int>*>(nullptr));
                ADD_FAILURE() << "nil recv returned";
                co_return;
            });
            co_await rt::sleepFor(kMillisecond);
            auto blocked = rtp->blockedCandidates();
            EXPECT_EQ(blocked.size(), 1u);
            if (blocked.empty()) co_return;
            EXPECT_EQ(blocked[0]->waitReason(),
                      rt::WaitReason::ChanRecvNil);
            EXPECT_TRUE(blocked[0]->blockedForever());
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(ChannelTest, RangeStyleDrainTerminatesOnClose)
{
    Runtime rt;
    int sum = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* sump) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                for (int i = 1; i <= 4; ++i)
                    co_await chan::send(c, i);
                chan::close(c);
                co_return;
            }, ch);
            // for v := range ch { sum += v }
            while (true) {
                auto rr = co_await chan::recv(ch);
                if (!rr.ok)
                    break;
                *sump += rr.value;
            }
            co_return;
        },
        &rt, &sum);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(sum, 10);
}

TEST(ChannelTest, MultipleReceiversFifoWakeup)
{
    Runtime rt;
    std::vector<int> got;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, std::vector<int>* gotp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            for (int i = 0; i < 3; ++i) {
                GOLF_GO(*rtp, +[](Channel<int>* c,
                                  std::vector<int>* out) -> Go {
                    auto rr = co_await chan::recv(c);
                    out->push_back(rr.value);
                    co_return;
                }, ch, gotp);
            }
            co_await rt::sleepFor(kMillisecond);
            for (int i = 10; i < 13; ++i)
                co_await chan::send(ch, i);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &got);
    EXPECT_TRUE(r.ok());
    ASSERT_EQ(got.size(), 3u);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<int>{10, 11, 12}));
}

// ---------------------------------------------------------------- select

TEST(SelectTest, DefaultFiresWhenNothingReady)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            int idx = co_await chan::select(chan::recvCase(ch),
                                            chan::defaultCase());
            EXPECT_EQ(idx, chan::kSelectDefault);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, ReadyRecvCaseFiresImmediately)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* a = makeChan<int>(*rtp, 1);
            auto* b = makeChan<int>(*rtp, 1);
            co_await chan::send(b, 99);
            int x = 0;
            bool ok = false;
            int idx = co_await chan::select(
                chan::recvCase(a, &x, &ok),
                chan::recvCase(b, &x, &ok));
            EXPECT_EQ(idx, 1);
            EXPECT_TRUE(ok);
            EXPECT_EQ(x, 99);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, BlocksUntilACaseFires)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* a = makeChan<int>(*rtp, 0);
            auto* b = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                co_await rt::sleepFor(kMillisecond);
                co_await chan::send(c, 5);
                co_return;
            }, b);
            int x = 0;
            int idx = co_await chan::select(chan::recvCase(a, &x),
                                            chan::recvCase(b, &x));
            EXPECT_EQ(idx, 1);
            EXPECT_EQ(x, 5);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, SendCaseDeliversToReceiver)
{
    Runtime rt;
    int got = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* gotp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, recvInto, ch, gotp);
            co_await rt::sleepFor(kMillisecond);
            int idx = co_await chan::select(chan::sendCase(ch, 33));
            EXPECT_EQ(idx, 0);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &got);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(got, 33);
}

TEST(SelectTest, SelectWithTimeoutPattern)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* work = makeChan<int>(*rtp, 0);
            auto* timeout = rt::after(*rtp, 2 * kMillisecond);
            int idx = co_await chan::select(
                chan::recvCase(work),
                chan::recvCase(timeout));
            EXPECT_EQ(idx, 1); // timeout wins: nobody sends on work
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, NilChannelCaseNeverFires)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* live = makeChan<int>(*rtp, 1);
            co_await chan::send(live, 1);
            int x = 0;
            int idx = co_await chan::select(
                chan::recvCase(static_cast<Channel<int>*>(nullptr), &x),
                chan::recvCase(live, &x));
            EXPECT_EQ(idx, 1);
            EXPECT_EQ(x, 1);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, RecvCaseOnClosedChannelFiresNotOk)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* ch = makeChan<int>(*rtp, 0);
            chan::close(ch);
            int x = 123;
            bool ok = true;
            int idx = co_await chan::select(chan::recvCase(ch, &x, &ok));
            EXPECT_EQ(idx, 0);
            EXPECT_FALSE(ok);
            EXPECT_EQ(x, 0);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, BlockedSelectHasAllChannelsInBlockedSet)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* a = makeChan<int>(*rtp, 0);
            auto* b = makeChan<int>(*rtp, 0);
            rt::Goroutine* g = GOLF_GO(*rtp,
                +[](Channel<int>* ca, Channel<int>* cb) -> Go {
                    co_await chan::select(chan::recvCase(ca),
                                          chan::sendCase(cb, 1));
                    co_return;
                }, a, b);
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(g->status(), rt::GStatus::Waiting);
            EXPECT_EQ(g->waitReason(), rt::WaitReason::Select);
            EXPECT_EQ(g->blockedOn().size(), 2u);
            // Fire one case so the run ends cleanly.
            co_await chan::send(a, 1);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, ZeroCaseSelectBlocksForever)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[]() -> Go {
                co_await chan::selectForever();
                co_return;
            });
            co_await rt::sleepFor(kMillisecond);
            auto blocked = rtp->blockedCandidates();
            EXPECT_EQ(blocked.size(), 1u);
            if (blocked.empty()) co_return;
            EXPECT_EQ(blocked[0]->waitReason(),
                      rt::WaitReason::SelectNoCases);
            EXPECT_TRUE(blocked[0]->blockedForever());
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, OnlyOneCaseFiresPerSelect)
{
    // Two channels fire "simultaneously": the select must consume
    // exactly one and leave the other value intact.
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            auto* a = makeChan<int>(*rtp, 1);
            auto* b = makeChan<int>(*rtp, 1);
            co_await chan::send(a, 1);
            co_await chan::send(b, 2);
            int x = 0;
            int idx = co_await chan::select(chan::recvCase(a, &x),
                                            chan::recvCase(b, &x));
            EXPECT_TRUE(idx == 0 || idx == 1);
            EXPECT_EQ(a->size() + b->size(), 1u);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(SelectTest, StaleWaiterRemovedAfterSelectResolves)
{
    // After a select fires via channel b, its stale waiter on a must
    // not swallow a later send on a.
    Runtime rt;
    int got = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* gotp) -> Go {
            auto* a = makeChan<int>(*rtp, 0);
            auto* b = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, +[](Channel<int>* ca, Channel<int>* cb)
                -> Go {
                int x = 0;
                co_await chan::select(chan::recvCase(ca, &x),
                                      chan::recvCase(cb, &x));
                co_return;
            }, a, b);
            co_await rt::sleepFor(kMillisecond);
            co_await chan::send(b, 1); // resolves the select via b
            co_await rt::sleepFor(kMillisecond);
            // Now a must have no active receiver: a send would block,
            // so use a fresh receiver goroutine.
            GOLF_GO(*rtp, recvInto, a, gotp);
            co_await rt::sleepFor(kMillisecond);
            co_await chan::send(a, 77);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &got);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(got, 77);
}

} // namespace
} // namespace golf
