/**
 * @file
 * Differential-equivalence suite for parallel marking.
 *
 * The contract under test (DESIGN.md Section 8): every observable GC
 * and GOLF result — the marked set, the survivor set after sweep, the
 * deadlock report set, every MemStats field — is byte-identical for
 * every value of rt::Config::gcWorkers. Worker count is allowed to
 * change only wall-clock timings and the parallelMarkJobs scheduling
 * counter.
 *
 * Layers:
 *  - WorkDequeTest: the Chase–Lev deque in isolation, including a
 *    multi-threaded steal stress (every element taken exactly once).
 *  - ParallelMarkerTest: twin-heap differentials on seeded random
 *    object graphs — serial marker vs pools of 2/4/8 workers.
 *  - DeepChainTest: the 1M-node regression for the iterative worklist
 *    and for hook dispatch at pop (the old eager-liveness hook fired
 *    inside mark() and nested one C++ frame per daisy-chain link).
 *  - RuntimeDifferentialTest: full runs (own scenario + microbench
 *    corpus subset) compared field by field across worker counts.
 *  - FuzzDifferentialTest: randomized graphs against a GC-free BFS
 *    oracle, and fault-injected corpus runs (forced GCs, throwing
 *    reclaims, quarantines) replayed at different worker counts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chan/channel.hpp"
#include "gc/heap.hpp"
#include "gc/parallel.hpp"
#include "golf/collector.hpp"
#include "golf/report.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

// ---------------------------------------------------------------------------
// WorkDequeTest
// ---------------------------------------------------------------------------

/** Plain unmanaged objects are fine as deque payload. */
std::vector<std::unique_ptr<gc::Object>>
makePayload(size_t n)
{
    std::vector<std::unique_ptr<gc::Object>> objs;
    objs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        objs.push_back(std::make_unique<gc::Object>());
    return objs;
}

TEST(WorkDequeTest, OwnerPushPopIsLifo)
{
    gc::WorkDeque dq;
    auto objs = makePayload(100);
    for (auto& o : objs)
        dq.push(o.get());
    for (size_t i = objs.size(); i-- > 0;)
        EXPECT_EQ(dq.pop(), objs[i].get());
    EXPECT_EQ(dq.pop(), nullptr);
    EXPECT_TRUE(dq.looksEmpty());
}

TEST(WorkDequeTest, StealTakesOldestFirst)
{
    gc::WorkDeque dq;
    auto objs = makePayload(100);
    for (auto& o : objs)
        dq.push(o.get());
    for (size_t i = 0; i < objs.size(); ++i)
        EXPECT_EQ(dq.steal(), objs[i].get());
    EXPECT_EQ(dq.steal(), nullptr);
}

TEST(WorkDequeTest, GrowsPastInitialCapacityWithoutLoss)
{
    gc::WorkDeque dq;
    // Well past the initial ring size, forcing at least two grows.
    auto objs = makePayload(5000);
    for (auto& o : objs)
        dq.push(o.get());
    std::set<gc::Object*> taken;
    while (gc::Object* o = dq.pop())
        taken.insert(o);
    EXPECT_EQ(taken.size(), objs.size());
    for (auto& o : objs)
        EXPECT_TRUE(taken.count(o.get()));
}

TEST(WorkDequeTest, ResetAllowsReuse)
{
    gc::WorkDeque dq;
    auto objs = makePayload(3000);
    for (auto& o : objs)
        dq.push(o.get());
    while (dq.pop() != nullptr) {
    }
    dq.reset();
    EXPECT_TRUE(dq.looksEmpty());
    dq.push(objs[0].get());
    EXPECT_EQ(dq.steal(), objs[0].get());
    EXPECT_EQ(dq.pop(), nullptr);
}

TEST(WorkDequeTest, ConcurrentStealsTakeEveryObjectExactlyOnce)
{
    // One owner pushing (and occasionally popping) against three
    // thieves. Afterwards the union of everything taken must be an
    // exact partition of everything pushed — no element lost to a
    // grow or a CAS duel, none handed out twice.
    constexpr size_t kObjects = 20000;
    constexpr int kThieves = 3;
    gc::WorkDeque dq;
    auto objs = makePayload(kObjects);

    std::atomic<bool> ownerDone{false};
    std::vector<std::vector<gc::Object*>> takenBy(kThieves + 1);

    std::vector<std::thread> thieves;
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&, t] {
            auto& mine = takenBy[static_cast<size_t>(t) + 1];
            for (;;) {
                if (gc::Object* o = dq.steal())
                    mine.push_back(o);
                else if (ownerDone.load(std::memory_order_acquire))
                    break;
                else
                    std::this_thread::yield();
            }
            // Final sweep: nothing published after ownerDone.
            while (gc::Object* o = dq.steal())
                mine.push_back(o);
        });
    }

    auto& ownerTaken = takenBy[0];
    for (size_t i = 0; i < kObjects; ++i) {
        dq.push(objs[i].get());
        // Pop a little from our own end to exercise the bottom-end
        // CAS duel against concurrent steals.
        if (i % 7 == 0) {
            if (gc::Object* o = dq.pop())
                ownerTaken.push_back(o);
        }
    }
    while (gc::Object* o = dq.pop())
        ownerTaken.push_back(o);
    ownerDone.store(true, std::memory_order_release);
    for (auto& th : thieves)
        th.join();

    std::map<gc::Object*, int> count;
    for (const auto& v : takenBy)
        for (gc::Object* o : v)
            ++count[o];
    EXPECT_EQ(count.size(), kObjects);
    for (auto& o : objs) {
        ASSERT_EQ(count[o.get()], 1)
            << "object taken " << count[o.get()] << " times";
    }
}

// ---------------------------------------------------------------------------
// Seeded random object graphs (shared by the heap-level suites)
// ---------------------------------------------------------------------------

/** A graph node: traced edges in `out`, plus one edge (`hookNext`)
 *  that trace() deliberately ignores — only a mark hook can follow
 *  it, standing in for GOLF's eager-liveness edges. */
struct Node final : gc::Object
{
    explicit Node(size_t nodeId) : id(nodeId) {}

    size_t id;
    std::vector<Node*> out;
    Node* hookNext = nullptr;

    void
    trace(gc::Marker& m) override
    {
        for (Node* n : out)
            m.mark(n);
    }

    const char* objectName() const override { return "node"; }
};

struct Graph
{
    std::vector<Node*> nodes;
    std::vector<size_t> roots; ///< Indices into nodes.
};

/**
 * Build a seeded random graph: random edges (which freely create
 * cycles), a root sample, and a disconnected tail of garbage nodes
 * that nothing points at. Identical (seed, n) always produces the
 * same shape, so two heaps built from the same inputs are twins
 * related by node index.
 */
Graph
buildGraph(gc::Heap& heap, uint64_t seed, size_t n)
{
    support::Rng rng(seed);
    Graph g;
    g.nodes.reserve(n);
    for (size_t i = 0; i < n; ++i)
        g.nodes.push_back(heap.make<Node>(i));
    // The last eighth is garbage: no inbound edges, never a root.
    const size_t connectable = n - n / 8;
    for (size_t i = 0; i < connectable; ++i) {
        const size_t degree = rng.nextBelow(4);
        for (size_t e = 0; e < degree; ++e) {
            g.nodes[i]->out.push_back(
                g.nodes[rng.nextBelow(connectable)]);
        }
    }
    const size_t rootCount = 1 + n / 100;
    for (size_t r = 0; r < rootCount; ++r)
        g.roots.push_back(rng.nextBelow(connectable));
    return g;
}

/** GC-free reachability oracle: plain BFS over the traced edges. */
std::set<size_t>
oracleReachable(const Graph& g)
{
    std::set<size_t> seen;
    std::vector<Node*> work;
    for (size_t r : g.roots) {
        if (seen.insert(g.nodes[r]->id).second)
            work.push_back(g.nodes[r]);
    }
    while (!work.empty()) {
        Node* n = work.back();
        work.pop_back();
        for (Node* o : n->out) {
            if (seen.insert(o->id).second)
                work.push_back(o);
        }
    }
    return seen;
}

/** Everything one marked cycle observably produced. */
struct CycleOutcome
{
    std::vector<uint8_t> marked; ///< By node index, before sweep.
    uint64_t objectsMarked = 0;
    uint64_t bytesMarked = 0;
    uint64_t pointersTraversed = 0;
    size_t freed = 0;
    std::set<size_t> survivors; ///< Node ids alive after sweep.
};

/** Run one mark+sweep over a fresh twin graph. workers == 0 uses the
 *  historical standalone marker (Heap::beginCycle); workers >= 1
 *  uses the pool. */
CycleOutcome
runGraphCycle(uint64_t seed, size_t n, int workers)
{
    gc::Heap heap;
    Graph g = buildGraph(heap, seed, n);

    CycleOutcome out;
    auto finish = [&](gc::Marker& m) {
        for (Node* node : g.nodes)
            out.marked.push_back(m.isMarked(node) ? 1 : 0);
        out.objectsMarked = m.objectsMarked();
        out.bytesMarked = m.bytesMarked();
        out.pointersTraversed = m.pointersTraversed();
        out.freed = heap.sweep(m);
        heap.forEachObject([&](gc::Object* o) {
            out.survivors.insert(static_cast<Node*>(o)->id);
        });
    };

    if (workers == 0) {
        gc::Marker m = heap.beginCycle();
        for (size_t r : g.roots)
            m.mark(g.nodes[r]);
        m.drain();
        finish(m);
    } else {
        gc::ParallelMarker& pool = heap.beginCycleParallel(workers);
        gc::Marker& m = pool.coordinator();
        for (size_t r : g.roots)
            m.mark(g.nodes[r]);
        m.drain();
        finish(m);
    }
    return out;
}

// ---------------------------------------------------------------------------
// ParallelMarkerTest — twin-heap differentials
// ---------------------------------------------------------------------------

TEST(ParallelMarkerTest, TwinHeapsMarkIdenticallyAcrossWorkerCounts)
{
    for (uint64_t seed : {11ull, 42ull, 1234ull}) {
        const CycleOutcome serial = runGraphCycle(seed, 6000, 0);
        for (int workers : {1, 2, 4, 8}) {
            const CycleOutcome par = runGraphCycle(seed, 6000, workers);
            EXPECT_EQ(par.marked, serial.marked)
                << "seed=" << seed << " workers=" << workers;
            EXPECT_EQ(par.objectsMarked, serial.objectsMarked);
            EXPECT_EQ(par.bytesMarked, serial.bytesMarked);
            EXPECT_EQ(par.pointersTraversed, serial.pointersTraversed);
            EXPECT_EQ(par.freed, serial.freed);
            EXPECT_EQ(par.survivors, serial.survivors);
        }
    }
}

TEST(ParallelMarkerTest, MarkedSetEqualsOracleReachability)
{
    gc::Heap heap;
    Graph g = buildGraph(heap, 77, 4000);
    const std::set<size_t> oracle = oracleReachable(g);

    gc::ParallelMarker& pool = heap.beginCycleParallel(4);
    gc::Marker& m = pool.coordinator();
    for (size_t r : g.roots)
        m.mark(g.nodes[r]);
    m.drain();

    std::set<size_t> marked;
    for (Node* n : g.nodes) {
        if (m.isMarked(n))
            marked.insert(n->id);
    }
    EXPECT_EQ(marked, oracle);
    EXPECT_EQ(m.objectsMarked(), oracle.size());
}

TEST(ParallelMarkerTest, LargeGraphDispatchesParallelJobs)
{
    // Enough reachable objects to overflow the coordinator's serial
    // drain budget, so the pool must actually wake worker threads.
    gc::Heap heap;
    Graph g = buildGraph(heap, 5, 50000);
    gc::ParallelMarker& pool = heap.beginCycleParallel(4);
    gc::Marker& m = pool.coordinator();
    for (size_t r : g.roots)
        m.mark(g.nodes[r]);
    m.drain();
    EXPECT_GT(m.objectsMarked(), 4096u);
    EXPECT_GE(pool.parallelJobsThisCycle(), 1u);
    EXPECT_FALSE(pool.jobActive());
}

TEST(ParallelMarkerTest, MarkHookFiresExactlyOncePerMarkedObject)
{
    // The CAS on the mark epoch elects exactly one greyer per object,
    // so the hook (fired at pop) runs once per object even when four
    // workers race over a cyclic graph.
    constexpr size_t kNodes = 30000;
    gc::Heap heap;
    Graph g = buildGraph(heap, 9, kNodes);

    std::vector<std::atomic<uint32_t>> pops(kNodes);
    gc::ParallelMarker& pool = heap.beginCycleParallel(4);
    pool.setMarkHook([&pops](gc::Marker&, gc::Object* o) {
        pops[static_cast<Node*>(o)->id].fetch_add(
            1, std::memory_order_relaxed);
    });
    gc::Marker& m = pool.coordinator();
    for (size_t r : g.roots)
        m.mark(g.nodes[r]);
    m.drain();

    uint64_t totalPops = 0;
    for (size_t i = 0; i < kNodes; ++i) {
        const uint32_t c = pops[i].load(std::memory_order_relaxed);
        ASSERT_LE(c, 1u) << "node " << i << " popped " << c << " times";
        ASSERT_EQ(c == 1, m.isMarked(g.nodes[i]))
            << "hook fired iff marked, node " << i;
        totalPops += c;
    }
    EXPECT_EQ(totalPops, m.objectsMarked());
}

TEST(ParallelMarkerTest, HookDiscoveredEdgesReachHookOnlyNodes)
{
    // hookNext edges are invisible to trace(); only the hook marks
    // them — the shape of GOLF's eager-liveness extension. A pool of
    // 4 must reach exactly the same closure as the serial marker.
    auto run = [](int workers) {
        gc::Heap heap;
        Graph g = buildGraph(heap, 21, 8000);
        support::Rng rng(99);
        // Chain half the garbage tail behind random reachable nodes
        // via hook-only edges.
        const size_t firstGarbage = g.nodes.size() - g.nodes.size() / 8;
        for (size_t i = firstGarbage;
             i < firstGarbage + g.nodes.size() / 16; ++i) {
            g.nodes[rng.nextBelow(firstGarbage)]->hookNext = g.nodes[i];
        }
        gc::MarkHook hook = [](gc::Marker& m, gc::Object* o) {
            if (Node* n = static_cast<Node*>(o)->hookNext)
                m.mark(n);
        };
        std::vector<uint8_t> marked;
        if (workers == 0) {
            gc::Marker m = heap.beginCycle();
            m.setMarkHook(hook);
            for (size_t r : g.roots)
                m.mark(g.nodes[r]);
            m.drain();
            for (Node* n : g.nodes)
                marked.push_back(m.isMarked(n) ? 1 : 0);
        } else {
            gc::ParallelMarker& pool = heap.beginCycleParallel(workers);
            pool.setMarkHook(hook);
            gc::Marker& m = pool.coordinator();
            for (size_t r : g.roots)
                m.mark(g.nodes[r]);
            m.drain();
            for (Node* n : g.nodes)
                marked.push_back(m.isMarked(n) ? 1 : 0);
        }
        return marked;
    };
    const auto serial = run(0);
    EXPECT_GT(std::count(serial.begin(), serial.end(), 1), 0);
    EXPECT_EQ(run(4), serial);
    EXPECT_EQ(run(2), serial);
}

TEST(ParallelMarkerTest, FinalizerSeenAggregatesAcrossViews)
{
    gc::Heap heap;
    Graph g = buildGraph(heap, 3, 20000);
    // A finalizer deep in the graph, likely traced by a non-zero
    // worker view; the aggregate accessor must still see it.
    const std::set<size_t> reach = oracleReachable(g);
    ASSERT_FALSE(reach.empty());
    heap.setFinalizer(g.nodes[*reach.rbegin()], [] {});

    gc::ParallelMarker& pool = heap.beginCycleParallel(4);
    gc::Marker& m = pool.coordinator();
    EXPECT_FALSE(m.finalizerSeen());
    for (size_t r : g.roots)
        m.mark(g.nodes[r]);
    m.drain();
    EXPECT_TRUE(m.finalizerSeen());
    m.clearFinalizerSeen();
    EXPECT_FALSE(m.finalizerSeen());
}

TEST(ParallelMarkerTest, PoolIsReusableAcrossCycles)
{
    gc::Heap heap;
    Graph g = buildGraph(heap, 8, 10000);
    uint64_t firstMarked = 0;
    for (int cycle = 0; cycle < 3; ++cycle) {
        gc::ParallelMarker& pool = heap.beginCycleParallel(4);
        gc::Marker& m = pool.coordinator();
        for (size_t r : g.roots)
            m.mark(g.nodes[r]);
        m.drain();
        if (cycle == 0)
            firstMarked = m.objectsMarked();
        else
            EXPECT_EQ(m.objectsMarked(), firstMarked);
        heap.sweep(m);
        // After the first sweep only survivors remain; re-collecting
        // the closed survivor set frees nothing further.
        if (cycle > 0) {
            EXPECT_EQ(heap.liveObjects(), firstMarked);
        }
    }
}

// ---------------------------------------------------------------------------
// DeepChainTest — the 1M-node iterative-worklist regression
// ---------------------------------------------------------------------------

/** Lean two-pointer node so a million of them stay cheap. */
struct ChainNode final : gc::Object
{
    ChainNode* next = nullptr;     ///< Traced.
    ChainNode* hookNext = nullptr; ///< Hook-only (eager liveness).

    void
    trace(gc::Marker& m) override
    {
        m.mark(next);
    }
};

constexpr size_t kChain = 1000000;

/** Build a kChain-long chain linked through the given member. */
ChainNode*
buildChain(gc::Heap& heap, ChainNode* ChainNode::*link)
{
    ChainNode* head = heap.make<ChainNode>();
    ChainNode* cur = head;
    for (size_t i = 1; i < kChain; ++i) {
        ChainNode* n = heap.make<ChainNode>();
        cur->*link = n;
        cur = n;
    }
    return head;
}

TEST(DeepChainTest, MillionNodeTraceChainSerial)
{
    gc::Heap heap;
    ChainNode* head = buildChain(heap, &ChainNode::next);
    gc::Marker m = heap.beginCycle();
    m.mark(head);
    m.drain(); // Would overflow the C++ stack if drain recursed.
    EXPECT_EQ(m.objectsMarked(), kChain);
    EXPECT_EQ(heap.sweep(m), 0u);
}

TEST(DeepChainTest, MillionNodeHookDaisyChainSerial)
{
    // The regression proper: a daisy chain reachable only through
    // the mark hook. The old implementation dispatched the hook
    // inside mark(), nesting one native frame per link — a chain
    // this long crashed long before completing. Hook-at-pop keeps
    // stack depth O(1).
    gc::Heap heap;
    ChainNode* head = buildChain(heap, &ChainNode::hookNext);
    gc::Marker m = heap.beginCycle();
    m.setMarkHook([](gc::Marker& mm, gc::Object* o) {
        if (ChainNode* n = static_cast<ChainNode*>(o)->hookNext)
            mm.mark(n);
    });
    m.mark(head);
    m.drain();
    EXPECT_EQ(m.objectsMarked(), kChain);
    EXPECT_EQ(heap.sweep(m), 0u);
}

TEST(DeepChainTest, MillionNodeChainParallelPool)
{
    // A chain has no width to parallelize, which makes it the worst
    // case for the pool: continuous donate/steal pressure with one
    // live edge. Must still terminate and mark everything.
    gc::Heap heap;
    ChainNode* head = buildChain(heap, &ChainNode::next);
    gc::ParallelMarker& pool = heap.beginCycleParallel(4);
    gc::Marker& m = pool.coordinator();
    m.mark(head);
    m.drain();
    EXPECT_EQ(m.objectsMarked(), kChain);
    EXPECT_EQ(m.bytesMarked(), kChain * sizeof(ChainNode));
    EXPECT_EQ(heap.sweep(m), 0u);
}

// ---------------------------------------------------------------------------
// RuntimeDifferentialTest — full runs across gcWorkers
// ---------------------------------------------------------------------------

/** Every deterministic observable of one full runtime run. */
struct RunSnapshot
{
    std::vector<std::string> reportKeys; ///< Sorted dedup keys.
    gc::MemStats ms;
    std::vector<std::string> cycleSignatures;
    int resolvedWorkers = 0;
};

/** Deterministic per-cycle fields only: wall-clock phase timings and
 *  the parallelMarkJobs scheduling counter are excluded by design. */
std::string
signatureOf(const detect::CycleStats& cs)
{
    std::ostringstream os;
    os << cs.cycle << '|' << cs.detectionRan << '|'
       << cs.markIterations << '|' << cs.pointersTraversed << '|'
       << cs.objectsMarked << '|' << cs.bytesMarked << '|'
       << cs.detectChecks << '|' << cs.modeledMarkNs << '|'
       << cs.modeledStwNs << '|' << cs.freedObjects << '|'
       << cs.deadlocksFound << '|' << cs.reclaimed << '|'
       << cs.quarantined;
    return os.str();
}

void
expectSameMemStats(const gc::MemStats& a, const gc::MemStats& b,
                   const std::string& what)
{
    EXPECT_EQ(a.heapAlloc, b.heapAlloc) << what;
    EXPECT_EQ(a.heapInuse, b.heapInuse) << what;
    EXPECT_EQ(a.heapObjects, b.heapObjects) << what;
    EXPECT_EQ(a.stackInuse, b.stackInuse) << what;
    EXPECT_EQ(a.totalAlloc, b.totalAlloc) << what;
    EXPECT_EQ(a.totalFreed, b.totalFreed) << what;
    EXPECT_EQ(a.pauseTotalNs, b.pauseTotalNs) << what;
    EXPECT_EQ(a.numGC, b.numGC) << what;
    EXPECT_EQ(a.gcCpuFraction, b.gcCpuFraction) << what;
}

/** A goroutine that blocks forever on a channel only it can reach —
 *  the canonical partial deadlock. */
Go
orphanReceiver(Runtime* rtp)
{
    gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
    co_await chan::recv(ch.get());
    co_return;
}

/** Blocked-but-live: parked on a channel main still holds. */
Go
liveReceiver(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

/** Mixed scenario: leaks, live blocked goroutines, garbage, several
 *  forced collections. */
Go
scenarioMain(Runtime* rtp)
{
    // Garbage: a list only this frame holds, dropped before the GC.
    {
        gc::Local<Channel<int>> junk(makeChan<int>(*rtp, 16));
        for (int i = 0; i < 16; ++i)
            co_await chan::send(junk.get(), i);
    }
    // Three orphaned receivers (deadlocks to detect and reclaim).
    for (int i = 0; i < 3; ++i)
        GOLF_GO(*rtp, orphanReceiver, rtp);
    // Five live receivers parked on a channel we keep.
    gc::Local<Channel<int>> held(makeChan<int>(*rtp, 0));
    for (int i = 0; i < 5; ++i)
        GOLF_GO(*rtp, liveReceiver, held.get());
    co_await rt::sleepFor(kMillisecond);
    co_await rt::gcNow();
    co_await rt::gcNow();
    // Release the live ones; their frames become garbage.
    for (int i = 0; i < 5; ++i)
        co_await chan::send(held.get(), i);
    co_await rt::sleepFor(kMillisecond);
    co_await rt::gcNow();
    co_return;
}

RunSnapshot
runScenario(int gcWorkers)
{
    rt::Config cfg;
    cfg.seed = 1337;
    cfg.gcMode = rt::GcMode::Golf;
    cfg.gcWorkers = gcWorkers;
    Runtime rt(cfg);
    rt::RunResult rr = rt.runMain(scenarioMain, &rt);
    EXPECT_TRUE(rr.ok());

    RunSnapshot snap;
    for (const auto& r : rt.collector().reports().all())
        snap.reportKeys.push_back(r.dedupKey());
    std::sort(snap.reportKeys.begin(), snap.reportKeys.end());
    snap.ms = rt.memStats();
    for (const auto& cs : rt.collector().history()) {
        snap.cycleSignatures.push_back(signatureOf(cs));
        EXPECT_EQ(cs.gcWorkers, cfg.resolvedGcWorkers());
    }
    snap.resolvedWorkers = cfg.resolvedGcWorkers();
    return snap;
}

TEST(RuntimeDifferentialTest, ScenarioIdenticalAcrossWorkerCounts)
{
    const RunSnapshot base = runScenario(1);
    EXPECT_FALSE(base.reportKeys.empty());
    EXPECT_FALSE(base.cycleSignatures.empty());
    for (int workers : {2, 4, 8}) {
        const RunSnapshot s = runScenario(workers);
        const std::string what = "gcWorkers=" + std::to_string(workers);
        EXPECT_EQ(s.reportKeys, base.reportKeys) << what;
        EXPECT_EQ(s.cycleSignatures, base.cycleSignatures) << what;
        expectSameMemStats(s.ms, base.ms, what);
        EXPECT_EQ(s.resolvedWorkers, workers);
    }
}

TEST(RuntimeDifferentialTest, AutoWorkerCountResolvesToHardware)
{
    rt::Config cfg; // gcWorkers defaults to 0 = auto.
    const unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(cfg.resolvedGcWorkers(),
              hw == 0 ? 1 : static_cast<int>(hw));
    cfg.gcWorkers = 3;
    EXPECT_EQ(cfg.resolvedGcWorkers(), 3);
}

TEST(RuntimeDifferentialTest, CorpusSubsetIdenticalAcrossWorkerCounts)
{
    using microbench::HarnessConfig;
    using microbench::Registry;
    using microbench::RunOutcome;
    using microbench::runPatternOnce;

    auto deadlocking = Registry::instance().deadlocking();
    auto corrects = Registry::instance().corrects();
    ASSERT_GE(deadlocking.size(), 3u);
    ASSERT_GE(corrects.size(), 1u);
    std::vector<const microbench::Pattern*> subset(
        deadlocking.begin(), deadlocking.begin() + 3);
    subset.push_back(corrects.front());

    for (const auto* p : subset) {
        HarnessConfig cfg;
        cfg.seed = 4242;
        cfg.procs = 4;
        cfg.gcWorkers = 1;
        const RunOutcome base = runPatternOnce(*p, cfg);
        for (int workers : {4, 8}) {
            cfg.gcWorkers = workers;
            const RunOutcome out = runPatternOnce(*p, cfg);
            const std::string what =
                p->name + " gcWorkers=" + std::to_string(workers);
            EXPECT_EQ(out.detectedPerLabel, base.detectedPerLabel)
                << what;
            EXPECT_EQ(out.individualReports, base.individualReports)
                << what;
            EXPECT_EQ(out.unexpectedReports, base.unexpectedReports)
                << what;
            EXPECT_EQ(out.gcCycles, base.gcCycles) << what;
            EXPECT_EQ(out.runtimeFailure, base.runtimeFailure) << what;
        }
    }
}

// ---------------------------------------------------------------------------
// FuzzDifferentialTest — randomized property checks
// ---------------------------------------------------------------------------

TEST(FuzzDifferentialTest, RandomGraphSweepMatchesBfsOracle)
{
    // Property over random graphs: after a parallel mark + sweep,
    // the survivor set equals the GC-free BFS closure — no live
    // object swept, no dead object retained — at every worker count.
    support::Rng meta(20260805);
    for (int iter = 0; iter < 12; ++iter) {
        const uint64_t seed = meta.next();
        const size_t n = 500 + meta.nextBelow(7000);
        const int workers = 2 << meta.nextBelow(3); // 2, 4 or 8

        gc::Heap heap;
        Graph g = buildGraph(heap, seed, n);
        const std::set<size_t> oracle = oracleReachable(g);

        gc::ParallelMarker& pool = heap.beginCycleParallel(workers);
        gc::Marker& m = pool.coordinator();
        for (size_t r : g.roots)
            m.mark(g.nodes[r]);
        m.drain();
        const size_t freed = heap.sweep(m);

        std::set<size_t> survivors;
        heap.forEachObject([&](gc::Object* o) {
            survivors.insert(static_cast<Node*>(o)->id);
        });
        EXPECT_EQ(survivors, oracle)
            << "iter=" << iter << " seed=" << seed << " n=" << n
            << " workers=" << workers;
        EXPECT_EQ(freed, n - oracle.size());
    }
}

TEST(FuzzDifferentialTest, FaultInjectedRunsIdenticalAcrossWorkers)
{
    // Chaos differential: forced collections, throwing reclaims and
    // injected panics exercise GC entry from every odd state. The
    // fault schedule itself is virtual-clock driven, so it — and the
    // report set, and the quarantine count — must not depend on
    // gcWorkers either.
    using microbench::HarnessConfig;
    using microbench::Registry;
    using microbench::RunOutcome;
    using microbench::runPatternOnce;

    auto deadlocking = Registry::instance().deadlocking();
    ASSERT_GE(deadlocking.size(), 2u);

    for (size_t pi = 0; pi < 2; ++pi) {
        const auto* p = deadlocking[pi];
        for (uint64_t seed : {7ull, 991ull}) {
            HarnessConfig cfg;
            cfg.seed = seed;
            cfg.procs = 2;
            cfg.verifyInvariants = true;
            cfg.faults.enabled = true;
            cfg.faults.forceGcProb = 0.20;
            cfg.faults.reclaimFailureProb = 0.30;
            cfg.faults.panicProb = 0.01;
            cfg.faults.spuriousWakeupProb = 0.05;
            cfg.faults.delayedWakeupProb = 0.05;

            cfg.gcWorkers = 1;
            const RunOutcome base = runPatternOnce(*p, cfg);
            EXPECT_TRUE(base.invariantViolations.empty())
                << p->name << " seed=" << seed << " serial: "
                << (base.invariantViolations.empty()
                        ? ""
                        : base.invariantViolations.front());

            cfg.gcWorkers = 4;
            const RunOutcome out = runPatternOnce(*p, cfg);
            const std::string what =
                p->name + " seed=" + std::to_string(seed);
            EXPECT_EQ(out.faultTrace, base.faultTrace) << what;
            EXPECT_EQ(out.faultsInjected, base.faultsInjected) << what;
            EXPECT_EQ(out.individualReports, base.individualReports)
                << what;
            EXPECT_EQ(out.detectedPerLabel, base.detectedPerLabel)
                << what;
            EXPECT_EQ(out.quarantined, base.quarantined) << what;
            EXPECT_EQ(out.containedPanics, base.containedPanics)
                << what;
            EXPECT_TRUE(out.invariantViolations.empty()) << what;
            EXPECT_EQ(out.runtimeFailure, base.runtimeFailure) << what;
        }
    }
}

} // namespace
} // namespace golf
