/**
 * @file
 * Reference-model property test for channels: a random sequence of
 * send/recv/close operations executed by producer/consumer goroutines
 * is checked against a pure FIFO queue model. Every delivered value
 * must match the model exactly: channels deliver every sent value,
 * once, in order, and report closure only after draining.
 */
#include <gtest/gtest.h>

#include <deque>

#include "chan/channel.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;

struct ModelCheck
{
    std::vector<int> sent;
    std::vector<int> received;
    bool sawClose = false;
};

Go
modelProducer(Channel<int>* ch, ModelCheck* mc, int count, int base)
{
    for (int i = 0; i < count; ++i) {
        mc->sent.push_back(base + i);
        co_await chan::send(ch, base + i);
    }
    co_return;
}

Go
modelConsumer(Channel<int>* ch, ModelCheck* mc)
{
    while (true) {
        auto r = co_await chan::recv(ch);
        if (!r.ok) {
            mc->sawClose = true;
            break;
        }
        mc->received.push_back(r.value);
    }
    co_return;
}

class ChannelModelTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(ChannelModelTest, SingleProducerSingleConsumerExactFifo)
{
    auto [capacity, count, procs] = GetParam();
    rt::Config cfg;
    cfg.procs = procs;
    cfg.seed = static_cast<uint64_t>(capacity * 131 + count);
    Runtime rt(cfg);
    ModelCheck mc;
    rt.runMain(
        +[](Runtime* rtp, ModelCheck* m, int cap, int n) -> Go {
            gc::Local<Channel<int>> ch(
                makeChan<int>(*rtp, static_cast<size_t>(cap)));
            GOLF_GO(*rtp, modelProducer, ch.get(), m, n, 100);
            GOLF_GO(*rtp, modelConsumer, ch.get(), m);
            co_await rt::sleepFor(5 * support::kMillisecond);
            chan::close(ch.get());
            co_await rt::sleepFor(support::kMillisecond);
            co_return;
        },
        &rt, &mc, capacity, count);

    // With a single producer, FIFO means the consumer saw exactly
    // the sent prefix, in order.
    ASSERT_LE(mc.received.size(), mc.sent.size());
    for (size_t i = 0; i < mc.received.size(); ++i)
        EXPECT_EQ(mc.received[i], mc.sent[i]) << "at " << i;
    EXPECT_TRUE(mc.sawClose);
    // All sends completed before the close (enough virtual time).
    EXPECT_EQ(mc.received.size(), mc.sent.size());
}

INSTANTIATE_TEST_SUITE_P(
    CapsCountsProcs, ChannelModelTest,
    ::testing::Combine(::testing::Values(0, 1, 3, 16),
                       ::testing::Values(1, 7, 40),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
        return "cap" + std::to_string(std::get<0>(info.param)) +
               "_n" + std::to_string(std::get<1>(info.param)) +
               "_p" + std::to_string(std::get<2>(info.param));
    });

TEST(ChannelModelMultiTest, ManyProducersDeliverEveryValueOnce)
{
    // 4 producers x 25 values, 2 consumers: the union of received
    // values must be exactly the multiset sent (no loss, no dupes).
    rt::Config cfg;
    cfg.procs = 4;
    cfg.seed = 99;
    Runtime rt(cfg);
    std::vector<int> received;
    rt.runMain(
        +[](Runtime* rtp, std::vector<int>* out) -> Go {
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 2));
            for (int p = 0; p < 4; ++p) {
                GOLF_GO(*rtp, +[](Channel<int>* c, int base) -> Go {
                    for (int i = 0; i < 25; ++i)
                        co_await chan::send(c, base + i);
                    co_return;
                }, ch.get(), p * 1000);
            }
            for (int k = 0; k < 2; ++k) {
                GOLF_GO(*rtp,
                    +[](Channel<int>* c, std::vector<int>* o) -> Go {
                        while (true) {
                            auto r = co_await chan::recv(c);
                            if (!r.ok)
                                break;
                            o->push_back(r.value);
                        }
                        co_return;
                    }, ch.get(), out);
            }
            co_await rt::sleepFor(10 * support::kMillisecond);
            chan::close(ch.get());
            co_await rt::sleepFor(support::kMillisecond);
            co_return;
        },
        &rt, &received);

    ASSERT_EQ(received.size(), 100u);
    std::sort(received.begin(), received.end());
    EXPECT_EQ(std::adjacent_find(received.begin(), received.end()),
              received.end()); // no duplicates
    for (int p = 0; p < 4; ++p) {
        for (int i = 0; i < 25; ++i) {
            EXPECT_TRUE(std::binary_search(received.begin(),
                                           received.end(),
                                           p * 1000 + i));
        }
    }
    // Per-producer order preserved within the merged stream is
    // implied by binary_search above plus FIFO; spot-check one
    // producer's subsequence.
}

TEST(ChannelModelMultiTest, PerProducerOrderPreserved)
{
    rt::Config cfg;
    cfg.procs = 4;
    cfg.seed = 123;
    Runtime rt(cfg);
    std::vector<int> received;
    rt.runMain(
        +[](Runtime* rtp, std::vector<int>* out) -> Go {
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            for (int p = 0; p < 3; ++p) {
                GOLF_GO(*rtp, +[](Channel<int>* c, int base) -> Go {
                    for (int i = 0; i < 15; ++i)
                        co_await chan::send(c, base + i);
                    co_return;
                }, ch.get(), p * 100);
            }
            GOLF_GO(*rtp,
                +[](Channel<int>* c, std::vector<int>* o) -> Go {
                    for (int i = 0; i < 45; ++i)
                        o->push_back((co_await chan::recv(c)).value);
                    co_return;
                }, ch.get(), out);
            co_await rt::sleepFor(10 * support::kMillisecond);
            co_return;
        },
        &rt, &received);

    ASSERT_EQ(received.size(), 45u);
    // Within each producer's values, order must be ascending.
    for (int p = 0; p < 3; ++p) {
        int last = -1;
        for (int v : received) {
            if (v / 100 == p) {
                EXPECT_GT(v, last);
                last = v;
            }
        }
    }
}

} // namespace
} // namespace golf
