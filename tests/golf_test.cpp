/**
 * @file
 * GOLF detector tests: every Listing of the paper as an executable
 * check, plus the fixpoint daisy-chain of Section 5.2, two-cycle
 * recovery with finalizer preservation (Section 5.5), report
 * deduplication, report-only mode, and detection frequency.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "runtime/timeapi.hpp"
#include "sync/mutex.hpp"
#include "sync/waitgroup.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using rt::RunResult;
using support::kMillisecond;

Go
blockedSender(Channel<int>* ch)
{
    co_await chan::send(ch, 1);
    co_return;
}

Go
blockedReceiver(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

// --------------------------------------------------------- detection

TEST(GolfTest, DetectsOrphanedSender)
{
    // Listing 7 shape: a goroutine sends on a channel the caller
    // dropped; once the channel is unreachable from live goroutines,
    // GOLF must flag the sender.
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.collector().reports().total(), 1u);
    const auto& rep = rt.collector().reports().all()[0];
    EXPECT_EQ(rep.reason, rt::WaitReason::ChanSend);
    EXPECT_GT(rep.stackBytes, 0u);
}

TEST(GolfTest, NoReportWhileChannelStillHeldByLiveGoroutine)
{
    // As long as main holds the channel in a Local, the sender is
    // reachably live and must NOT be reported.
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, blockedSender, ch.get());
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            // Unblock so the run ends cleanly.
            co_await chan::recv(ch.get());
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(GolfTest, FuncManagerPattern)
{
    // Listing 3: NewFuncManager spawns two range-loop goroutines over
    // embedded channels; ConcurrentTask returns early without calling
    // WaitForResults, deadlocking both.
    struct FuncManager : gc::Object
    {
        Channel<int>* e = nullptr;
        Channel<int>* d = nullptr;
        void
        trace(gc::Marker& m) override
        {
            m.mark(e);
            m.mark(d);
        }
    };

    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            {
                gc::Local<FuncManager> gfm(rtp->make<FuncManager>());
                gfm->e = makeChan<int>(*rtp, 0);
                gfm->d = makeChan<int>(*rtp, 0);
                GOLF_GO(*rtp, blockedReceiver, gfm->e); // range gfm.e
                GOLF_GO(*rtp, blockedReceiver, gfm->d); // range gfm.d
                co_await rt::sleepFor(kMillisecond);
                // ConcurrentTask takes the early-return path: gfm
                // goes out of scope without WaitForResults.
            }
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.collector().reports().total(), 2u);
}

TEST(GolfTest, GlobalChannelFalseNegative)
{
    // Listing 4: a deadlock on a globally reachable channel cannot be
    // detected (completeness does not hold).
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::GlobalRoot<Channel<int>> ch(rtp->heap(),
                                            makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, blockedSender, ch.get());
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    // The sender is genuinely leaked (GOLEAK-visible) but GOLF-blind.
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Waiting), 1u);
}

TEST(GolfTest, HeartbeatFalseNegative)
{
    // Listing 5: a runaway live heartbeat goroutine keeps the
    // dispatcher (and its channel) reachable, hiding the deadlocked
    // sender on dispatcher.ch.
    struct Dispatcher : gc::Object
    {
        Channel<Unit>* ch = nullptr;
        int ticks = 0;
        void
        trace(gc::Marker& m) override
        {
            m.mark(ch);
        }
    };

    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            Dispatcher* d = rtp->make<Dispatcher>();
            d->ch = makeChan<Unit>(*rtp, 0);
            // Heartbeat: sleeps forever, referencing d via spawnRefs.
            GOLF_GO(*rtp, +[](Dispatcher* dp) -> Go {
                for (;;) {
                    co_await rt::sleepFor(support::kSecond);
                    ++dp->ticks;
                }
            }, d);
            // The doomed sender on d->ch.
            GOLF_GO(*rtp, +[](Dispatcher* dp) -> Go {
                co_await chan::send(dp->ch, Unit{});
                co_return;
            }, d);
            co_await rt::sleepFor(5 * kMillisecond);
            co_await rt::gcNow();
            // The sender deadlocked, but the heartbeat exposes d.ch:
            // false negative, exactly as the paper describes.
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(GolfTest, DetectsNilChannelOperation)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[]() -> Go {
                co_await chan::recv(static_cast<Channel<int>*>(nullptr));
                co_return;
            });
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    ASSERT_EQ(rt.collector().reports().total(), 1u);
    EXPECT_EQ(rt.collector().reports().all()[0].reason,
              rt::WaitReason::ChanRecvNil);
}

TEST(GolfTest, DetectsZeroCaseSelect)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[]() -> Go {
                co_await chan::selectForever();
                co_return;
            });
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    ASSERT_EQ(rt.collector().reports().total(), 1u);
    EXPECT_EQ(rt.collector().reports().all()[0].reason,
              rt::WaitReason::SelectNoCases);
}

TEST(GolfTest, DetectsLeakedSelect)
{
    // select over two dropped channels: B(g) has two elements, both
    // unreachable.
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[](Channel<int>* a, Channel<int>* b) -> Go {
                co_await chan::select(chan::recvCase(a),
                                      chan::recvCase(b));
                co_return;
            }, makeChan<int>(*rtp, 0), makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    ASSERT_EQ(rt.collector().reports().total(), 1u);
    EXPECT_EQ(rt.collector().reports().all()[0].reason,
              rt::WaitReason::Select);
}

TEST(GolfTest, SelectWithReachableTimeoutIsLive)
{
    // A select whose channels are dropped but which also waits on a
    // pending time.After must stay live until the timer fires.
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[](Runtime* rp, Channel<int>* dead) -> Go {
                auto* t = rt::after(*rp, 50 * kMillisecond);
                co_await chan::select(chan::recvCase(dead),
                                      chan::recvCase(t));
                co_return;
            }, rtp, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            // Timer pending: not deadlocked.
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            co_await rt::sleepFor(100 * kMillisecond);
            co_return;
        },
        &rt);
    // After the timeout fired, the goroutine completed: no leak.
    EXPECT_EQ(rt.collector().reports().total(), 0u);
}

TEST(GolfTest, DetectsMutexDeadlock)
{
    // A goroutine parks on a mutex locked by a completed goroutine;
    // once the mutex is unreachable, the waiter is deadlocked.
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::Mutex* mu = rtp->make<sync::Mutex>(*rtp);
            EXPECT_TRUE(mu->tryLock()); // locked and never unlocked
            GOLF_GO(*rtp, +[](sync::Mutex* m) -> Go {
                co_await m->lock();
                co_return;
            }, mu);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    ASSERT_EQ(rt.collector().reports().total(), 1u);
    EXPECT_EQ(rt.collector().reports().all()[0].reason,
              rt::WaitReason::MutexLock);
}

TEST(GolfTest, DetectsWaitGroupDeadlock)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::WaitGroup* wg = rtp->make<sync::WaitGroup>(*rtp);
            wg->add(1); // no Done() ever comes
            GOLF_GO(*rtp, +[](sync::WaitGroup* w) -> Go {
                co_await w->wait();
                co_return;
            }, wg);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    ASSERT_EQ(rt.collector().reports().total(), 1u);
    EXPECT_EQ(rt.collector().reports().all()[0].reason,
              rt::WaitReason::WaitGroupWait);
}

TEST(GolfTest, MutexHeldByLiveGoroutineNotReported)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<sync::Mutex> mu(rtp->make<sync::Mutex>(*rtp));
            EXPECT_TRUE(mu->tryLock());
            GOLF_GO(*rtp, +[](sync::Mutex* m) -> Go {
                co_await m->lock();
                m->unlock();
                co_return;
            }, mu.get());
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            mu->unlock(); // lets the waiter finish
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_EQ(rt.collector().reports().total(), 0u);
}

// ---------------------------------------------------------- fixpoint

Go
chainLink(Channel<int>* in, Channel<int>* out)
{
    int v = (co_await chan::recv(in)).value;
    co_await chan::send(out, v);
    co_return;
}

TEST(GolfTest, DaisyChainNeedsNMarkIterations)
{
    // Section 5.2: a chain g1 <- g2 <- ... <- gn where each link's
    // liveness is discovered only after the previous link is marked.
    // Main holds only the head channel; each gi is blocked receiving
    // on chan i-1 and will later send on chan i.
    constexpr int kChain = 8;
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<Channel<int>> head(makeChan<int>(*rtp, 0));
            Channel<int>* prev = head.get();
            for (int i = 0; i < kChain; ++i) {
                auto* next = makeChan<int>(*rtp, 0);
                GOLF_GO(*rtp, chainLink, prev, next);
                prev = next;
            }
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            // Nothing deadlocked: the whole chain is reachably live
            // through main's head channel...
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            // ...but discovering it takes one root-expansion round
            // per link.
            EXPECT_GE(rtp->collector().lastCycle().markIterations,
                      static_cast<uint64_t>(kChain));
            // Unblock everything.
            co_await chan::send(head.get(), 1);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
}

// ---------------------------------------------------------- recovery

TEST(GolfTest, ReclaimFreesGoroutineAndMemoryNextCycle)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);

            uint64_t framesBefore = rtp->memStats().stackInuse;
            co_await rt::gcNow(); // cycle k: detect + report
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::PendingReclaim),
                      1u);
            // Channel still alive: closure marked during cycle k.
            EXPECT_GE(rtp->heap().liveObjects(), 1u);

            co_await rt::gcNow(); // cycle k+1: forced shutdown + sweep
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::PendingReclaim),
                      0u);
            EXPECT_EQ(rtp->heap().liveObjects(), 0u);
            EXPECT_LT(rtp->memStats().stackInuse, framesBefore);
            co_return;
        },
        &rt);
}

TEST(GolfTest, ReportOnlyKeepsGoroutineAndMemory)
{
    rt::Config cfg;
    cfg.recovery = rt::Recovery::ReportOnly;
    Runtime rt(cfg);
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Deadlocked), 1u);
            EXPECT_GE(rtp->heap().liveObjects(), 1u);
            co_await rt::gcNow();
            co_await rt::gcNow();
            // No re-reports, goroutine and memory still present.
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Deadlocked), 1u);
            EXPECT_GE(rtp->heap().liveObjects(), 1u);
            co_return;
        },
        &rt);
}

int gFinalized = 0;

TEST(GolfTest, FinalizerPreventsReclaim)
{
    // Listing 6: a deadlocked goroutine whose closure carries a
    // finalizer must not be reclaimed — the finalizer would run and
    // change observable semantics.
    struct Finalizable : gc::Object
    {
    };

    gFinalized = 0;
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[](Runtime* rp, Channel<int>* ch) -> Go {
                gc::Local<Finalizable> vs(rp->make<Finalizable>());
                rp->heap().setFinalizer(vs.get(), [] { ++gFinalized; });
                co_await chan::recv(ch); // deadlocks: ch dropped
                co_return;
            }, rtp, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);

            co_await rt::gcNow(); // detect
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            // Finalizer found in the closure: parked as Deadlocked,
            // never reclaimed.
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Deadlocked), 1u);
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::PendingReclaim),
                      0u);
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Deadlocked), 1u);
            EXPECT_EQ(gFinalized, 0); // semantics preserved
            // Reported exactly once despite repeated cycles.
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            co_return;
        },
        &rt);
    EXPECT_EQ(gFinalized, 0);
}

TEST(GolfTest, ReclaimedGoroutineObjectIsReused)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            rt::Goroutine* leaked =
                GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            uint64_t leakedId = leaked->id();
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_await rt::gcNow(); // reclaimed here
            EXPECT_EQ(leaked->status(), rt::GStatus::Idle);
            // Spawning again reuses the pooled object with a new id.
            rt::Goroutine* fresh = GOLF_GO(*rtp, +[]() -> Go {
                co_return;
            });
            EXPECT_EQ(fresh, leaked);
            EXPECT_NE(fresh->id(), leakedId);
            co_await rt::yield();
            co_return;
        },
        &rt);
}

TEST(GolfTest, SemtableEntryRemovedOnReclaim)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::Mutex* mu = rtp->make<sync::Mutex>(*rtp);
            EXPECT_TRUE(mu->tryLock());
            GOLF_GO(*rtp, +[](sync::Mutex* m) -> Go {
                co_await m->lock();
                co_return;
            }, mu);
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(rtp->semtable().entries(), 1u);
            EXPECT_TRUE(rtp->semtable().checkMaskedKeys());
            co_await rt::gcNow(); // detect
            co_await rt::gcNow(); // reclaim: waiter destructor runs
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u);
            // The waiter was unlinked from the treap queue.
            rt::Goroutine* any = nullptr;
            rtp->forEachGoroutine([&](rt::Goroutine* g) {
                if (g->status() == rt::GStatus::Waiting)
                    any = g;
            });
            EXPECT_EQ(any, nullptr);
            co_return;
        },
        &rt);
}

// ------------------------------------------------------ configuration

TEST(GolfTest, BaselineModeNeverDetects)
{
    rt::Config cfg;
    cfg.gcMode = rt::GcMode::Baseline;
    Runtime rt(cfg);
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    EXPECT_EQ(rt.collector().reports().total(), 0u);
    // The leak persists: goroutine still parked, channel still live.
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Waiting), 1u);
    EXPECT_GE(rt.heap().liveObjects(), 1u);
}

TEST(GolfTest, DetectEveryNthCycle)
{
    rt::Config cfg;
    cfg.detectEveryN = 3;
    Runtime rt(cfg);
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            co_await rt::gcNow(); // cycle 1: detection runs
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow(); // cycle 2: skipped
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            co_await rt::gcNow(); // cycle 3: skipped
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            co_await rt::gcNow(); // cycle 4: detection runs
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            co_return;
        },
        &rt);
    const auto& hist = rt.collector().history();
    ASSERT_GE(hist.size(), 4u);
    EXPECT_TRUE(hist[0].detectionRan);
    EXPECT_FALSE(hist[1].detectionRan);
    EXPECT_FALSE(hist[2].detectionRan);
    EXPECT_TRUE(hist[3].detectionRan);
}

TEST(GolfTest, DedupPairsSpawnAndBlockSites)
{
    // Many goroutines from the same go statement blocking at the same
    // operation must deduplicate to one report key (Section 6.1).
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            for (int i = 0; i < 7; ++i)
                GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_return;
        },
        &rt);
    EXPECT_EQ(rt.collector().reports().total(), 7u);
    EXPECT_EQ(rt.collector().reports().deduplicated(), 1u);
}

TEST(GolfTest, PacedCollectionDetectsWithoutForcedGc)
{
    // Detection must also fire on allocation-paced GC cycles, not
    // only on runtime.GC() (the production deployment mode).
    rt::Config cfg;
    cfg.heap.minTriggerBytes = 2048;
    Runtime rt(cfg);
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, blockedSender, makeChan<int>(*rtp, 0));
            co_await rt::sleepFor(kMillisecond);
            // Allocate garbage until pacing triggers a cycle.
            for (int i = 0; i < 200; ++i) {
                rtp->make<Channel<int>>(*rtp, 0);
                co_await rt::yield();
            }
            co_return;
        },
        &rt);
    EXPECT_GE(rt.collector().cycles(), 1u);
    EXPECT_EQ(rt.collector().reports().total(), 1u);
}

} // namespace
} // namespace golf
