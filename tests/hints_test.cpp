/**
 * @file
 * Tests for liveness hints (paper Section 8 future work): with a
 * static-analysis hint that a global or a runaway-live goroutine is
 * inert, GOLF detects the Listing 4 / Listing 5 false negatives —
 * while the hinted memory itself is still retained, and wrong-free
 * behaviour (no hints) is unchanged.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

Go
blockedSender(Channel<int>* ch)
{
    co_await chan::send(ch, 1);
    co_return;
}

TEST(HintsTest, InertGlobalDefeatsListing4FalseNegative)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::GlobalRoot<Channel<int>> ch(rtp->heap(),
                                            makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, blockedSender, ch.get());
            co_await rt::sleepFor(kMillisecond);

            // Without the hint: invisible (Listing 4).
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 0u);

            // A static analysis proves the global is never used
            // again; with the hint the deadlock surfaces.
            rtp->collector().hintInertGlobal(ch.get());
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            // The hinted global itself survives (memory retained).
            EXPECT_TRUE(rtp->heap().owns(ch.get()));
            co_return;
        },
        &rt);
}

struct Dispatcher : gc::Object
{
    Channel<Unit>* ch = nullptr;
    int ticks = 0;

    void
    trace(gc::Marker& m) override
    {
        m.mark(ch);
    }
};

Go
heartbeat(Dispatcher* d)
{
    for (;;) {
        co_await rt::sleepFor(support::kSecond);
        ++d->ticks;
    }
    co_return;
}

Go
doomedSender(Dispatcher* d)
{
    co_await chan::send(d->ch, Unit{});
    co_return;
}

TEST(HintsTest, InertGoroutineDefeatsListing5FalseNegative)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            Dispatcher* d = rtp->make<Dispatcher>();
            d->ch = makeChan<Unit>(*rtp, 0);
            rt::Goroutine* hb = GOLF_GO(*rtp, heartbeat, d);
            GOLF_GO(*rtp, doomedSender, d);
            co_await rt::sleepFor(5 * kMillisecond);

            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 0u);

            // Hint: the heartbeat only touches d.ticks, never d.ch.
            rtp->collector().hintInertGoroutine(hb);
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            // The heartbeat and its dispatcher remain alive.
            EXPECT_TRUE(rtp->heap().owns(d));
            EXPECT_NE(hb->status(), rt::GStatus::Idle);
            co_return;
        },
        &rt);
}

TEST(HintsTest, HintedRecoveryReclaimsOnlyTheDeadlocked)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            Dispatcher* d = rtp->make<Dispatcher>();
            d->ch = makeChan<Unit>(*rtp, 0);
            rt::Goroutine* hb = GOLF_GO(*rtp, heartbeat, d);
            GOLF_GO(*rtp, doomedSender, d);
            co_await rt::sleepFor(5 * kMillisecond);
            rtp->collector().hintInertGoroutine(hb);
            co_await rt::gcNow(); // detect
            co_await rt::gcNow(); // reclaim the sender
            // No blocked candidate remains (the heartbeat still
            // counts as Waiting — it is sleeping, not blocked).
            EXPECT_EQ(rtp->blockedCandidates().size(), 0u);
            // Heartbeat still running, dispatcher intact.
            EXPECT_TRUE(rtp->heap().owns(d));
            int before = d->ticks;
            co_await rt::sleepFor(3 * support::kSecond);
            EXPECT_GT(d->ticks, before);
            co_return;
        },
        &rt);
    EXPECT_EQ(rt.collector().reports().total(), 1u);
}

TEST(HintsTest, HintsDoNotAffectHealthyPrograms)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::GlobalRoot<Channel<int>> ch(rtp->heap(),
                                            makeChan<int>(*rtp, 2));
            // Hinting a global that is genuinely unused for
            // unblocking: buffered sends complete immediately, so no
            // goroutine depends on the global's reachability.
            rtp->collector().hintInertGlobal(ch.get());
            co_await chan::send(ch.get(), 1);
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            EXPECT_TRUE(rtp->heap().owns(ch.get()));
            EXPECT_EQ(ch->size(), 1u); // buffered value retained
            co_return;
        },
        &rt);
}

TEST(HintsTest, StaleGoroutineHintExpiresWithReuse)
{
    // Hints key on goroutine ids; a recycled Goroutine object gets a
    // fresh id, so an old hint must not leak onto it.
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            rt::Goroutine* g = GOLF_GO(*rtp, +[]() -> Go {
                co_return;
            });
            rtp->collector().hintInertGoroutine(g);
            co_await rt::yield();
            co_await rt::yield(); // g finished, pooled

            // Reuse the pooled object as a live holder goroutine.
            gc::Local<Channel<int>> keep(makeChan<int>(*rtp, 0));
            rt::Goroutine* g2 =
                GOLF_GO(*rtp, blockedSender, keep.get());
            EXPECT_EQ(g, g2); // pooled object reused
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            // keep is held by main: the sender is live, not flagged
            // (a stale hint would have hidden main's... no — a stale
            // hint on g2 would exclude g2's stack, but g2 is blocked
            // and keep is rooted by main; the real check: g2 must
            // not be excluded from candidate handling).
            EXPECT_EQ(rtp->collector().reports().total(), 0u);
            co_await chan::recv(keep.get());
            co_return;
        },
        &rt);
}

} // namespace
} // namespace golf
