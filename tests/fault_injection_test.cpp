/**
 * @file
 * FaultInjector behavior: determinism of the fault schedule, panic
 * containment, liveness under spurious/delayed wakeups, emergency
 * collection on simulated OOM, and the quarantine path when forced
 * reclaim fails mid-unwind.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "runtime/defer.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/mutex.hpp"
#include "sync/waitgroup.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::FaultKind;
using rt::Go;
using rt::RunResult;
using rt::Runtime;
using support::kMicrosecond;
using support::kMillisecond;

microbench::HarnessConfig
chaosConfig(uint64_t seed)
{
    microbench::HarnessConfig cfg;
    cfg.seed = seed;
    cfg.faults.enabled = true;
    cfg.faults.panicProb = 0.02;
    cfg.faults.spuriousWakeupProb = 0.2;
    cfg.faults.delayedWakeupProb = 0.2;
    cfg.faults.allocFailProb = 0.002;
    cfg.faults.forceGcProb = 0.02;
    cfg.faults.reclaimFailureProb = 0.5;
    return cfg;
}

TEST(FaultInjectionTest, IdenticalSeedReproducesIdenticalTrace)
{
    // Sparse patterns hit very few injection-eligible sites, so
    // aggregate the schedule over a slice of the corpus: identical
    // seed and config must reproduce the combined trace byte for
    // byte, and it must not be empty.
    auto corpus = microbench::Registry::instance().deadlocking();
    ASSERT_GE(corpus.size(), 5u);
    microbench::HarnessConfig cfg = chaosConfig(42);
    cfg.faults.spuriousWakeupProb = 0.5;
    cfg.faults.delayedWakeupProb = 0.5;
    std::string traceA, traceB;
    uint64_t injectedA = 0, injectedB = 0;
    uint64_t containedA = 0, containedB = 0;
    for (size_t i = 0; i < 5; ++i) {
        microbench::RunOutcome a =
            microbench::runPatternOnce(*corpus[i], cfg);
        microbench::RunOutcome b =
            microbench::runPatternOnce(*corpus[i], cfg);
        traceA += a.faultTrace;
        traceB += b.faultTrace;
        injectedA += a.faultsInjected;
        injectedB += b.faultsInjected;
        containedA += a.containedPanics;
        containedB += b.containedPanics;
    }
    EXPECT_FALSE(traceA.empty());
    EXPECT_EQ(traceA, traceB);
    EXPECT_EQ(injectedA, injectedB);
    EXPECT_EQ(containedA, containedB);
}

TEST(FaultInjectionTest, InjectedPanicsAreContained)
{
    rt::Config rc;
    rc.faults.enabled = true;
    rc.faults.panicProb = 1.0;
    Runtime rt(rc);
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            for (int i = 0; i < 4; ++i) {
                GOLF_GO(*rtp, +[](Runtime* rp) -> Go {
                    // First blocking operation draws an injected
                    // panic; the goroutine dies alone.
                    co_await chan::send(
                        chan::makeChan<int>(*rp, 0), 1);
                    co_return;
                }, rtp);
            }
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.containedPanics(), 4u);
    EXPECT_GE(rt.faults().countOf(FaultKind::Panic), 4u);
}

TEST(FaultInjectionTest, SpuriousWakeupsDoNotBreakMutualExclusion)
{
    rt::Config rc;
    rc.faults.enabled = true;
    rc.faults.spuriousWakeupProb = 1.0;
    rc.faults.delayMaxNs = 20 * kMicrosecond;
    Runtime rt(rc);
    int counter = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* ctr) -> Go {
            gc::Local<sync::Mutex> mu(rtp->make<sync::Mutex>(*rtp));
            gc::Local<sync::WaitGroup> wg(
                rtp->make<sync::WaitGroup>(*rtp));
            wg->add(2);
            for (int w = 0; w < 2; ++w) {
                GOLF_GO(*rtp, +[](sync::Mutex* m, sync::WaitGroup* g,
                                  int* c) -> Go {
                    for (int i = 0; i < 5; ++i) {
                        co_await m->lock();
                        ++*c;
                        m->unlock();
                        co_await rt::yield();
                    }
                    g->done();
                    co_return;
                }, mu.get(), wg.get(), ctr);
            }
            co_await wg->wait();
            co_return;
        },
        &rt, &counter);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(counter, 10);
    EXPECT_GT(rt.faults().countOf(FaultKind::SpuriousWakeup), 0u);
}

TEST(FaultInjectionTest, DelayedWakeupsPreserveDelivery)
{
    rt::Config rc;
    rc.faults.enabled = true;
    rc.faults.delayedWakeupProb = 1.0;
    rc.faults.delayMaxNs = 20 * kMicrosecond;
    Runtime rt(rc);
    int sum = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* out) -> Go {
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                for (int i = 1; i <= 10; ++i)
                    co_await chan::send(c, i);
                co_return;
            }, ch.get());
            for (int i = 0; i < 10; ++i) {
                auto got = co_await chan::recv(ch.get());
                *out += got.value;
            }
            co_return;
        },
        &rt, &sum);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(sum, 55);
    EXPECT_GT(rt.faults().countOf(FaultKind::DelayedWakeup), 0u);
}

TEST(FaultInjectionTest, SpacedAllocFailuresSurviveViaEmergencyGc)
{
    rt::Config rc;
    rc.faults.enabled = true;
    rc.faults.allocFailProb = 1.0;
    Runtime rt(rc);
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            for (int i = 0; i < 5; ++i) {
                rtp->make<sync::Mutex>(*rtp);
                // Reaching a safepoint lets the emergency collection
                // clear the pending-OOM state before the next alloc.
                co_await rt::sleepFor(kMillisecond);
            }
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_GE(rt.emergencyGcs(), 4u);
    EXPECT_GE(rt.faults().countOf(FaultKind::AllocFail), 5u);
}

TEST(FaultInjectionTest, BackToBackAllocFailureIsFatalOom)
{
    rt::Config rc;
    rc.faults.enabled = true;
    rc.faults.allocFailProb = 1.0;
    Runtime rt(rc);
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            // Two failed allocations with no safepoint between them:
            // the emergency collection never gets to run.
            rtp->make<sync::Mutex>(*rtp);
            rtp->make<sync::Mutex>(*rtp);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.panicked);
    EXPECT_NE(r.panicMessage.find("injected allocation failure"),
              std::string::npos);
}

TEST(FaultInjectionTest, ReclaimFailureQuarantinesAndRunContinues)
{
    rt::Config rc;
    rc.faults.enabled = true;
    rc.faults.reclaimFailureProb = 1.0;
    Runtime rt(rc);
    int delivered = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* dlv) -> Go {
            auto doomed = +[](Runtime* rp) -> Go {
                co_await chan::recv(chan::makeChan<int>(*rp, 0));
                co_return;
            };
            GOLF_GO(*rtp, doomed, rtp);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow(); // detect
            co_await rt::gcNow(); // reclaim -> injected failure
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Quarantined),
                      1u);
            EXPECT_EQ(
                rtp->collector().reports().quarantines().size(), 1u);

            // Survivors make progress alongside the quarantined one.
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                for (int i = 0; i < 3; ++i)
                    co_await chan::send(c, i);
                co_return;
            }, ch.get());
            for (int i = 0; i < 3; ++i) {
                auto got = co_await chan::recv(ch.get());
                *dlv += got.ok ? 1 : 0;
            }

            // Later cycles still detect and (with the fault off)
            // reclaim new deadlocks normally.
            rtp->faults().config().reclaimFailureProb = 0.0;
            GOLF_GO(*rtp, doomed, rtp);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Quarantined),
                      1u);
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u);
            EXPECT_EQ(rtp->collector().reports().total(), 2u);
            co_return;
        },
        &rt, &delivered);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(delivered, 3);
}

TEST(FaultInjectionTest, ThrowingDeferDuringReclaimQuarantines)
{
    // No injector at all: a user defer that throws while the
    // collector destroys the frames exercises the same quarantine
    // path as an injected reclaim failure.
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[](Runtime* rp) -> Go {
                GOLF_DEFER([] {
                    throw std::runtime_error("defer exploded");
                });
                co_await chan::recv(chan::makeChan<int>(*rp, 0));
                co_return;
            }, rtp);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Quarantined),
                      1u);
            const auto& q =
                rtp->collector().reports().quarantines();
            EXPECT_EQ(q.size(), 1u);
            if (!q.empty()) {
                EXPECT_NE(q[0].reason.find("defer exploded"),
                          std::string::npos);
            }

            // The scheduler keeps working around the quarantined
            // goroutine.
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                co_await chan::send(c, 9);
                co_return;
            }, ch.get());
            auto got = co_await chan::recv(ch.get());
            EXPECT_EQ(got.value, 9);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(FaultInjectionTest, ChaosSweepHoldsInvariants)
{
    auto corpus = microbench::Registry::instance().deadlocking();
    ASSERT_GE(corpus.size(), 3u);
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        for (size_t i = 0; i < 3; ++i) {
            microbench::HarnessConfig cfg = chaosConfig(seed * 977);
            cfg.verifyInvariants = true;
            microbench::RunOutcome out =
                microbench::runPatternOnce(*corpus[i], cfg);
            EXPECT_TRUE(out.invariantViolations.empty())
                << corpus[i]->name << " seed " << seed << ": "
                << (out.invariantViolations.empty()
                        ? ""
                        : out.invariantViolations.front());
        }
    }
}

} // namespace
} // namespace golf
