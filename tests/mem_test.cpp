/**
 * @file
 * golf::mem tests (ctest label `mem`): the memory-pressure ladder.
 *
 *  - PressureController: rung thresholds, one-shot-per-excursion
 *    arming, fatal grace accounting (DESIGN.md §14);
 *  - pacer cap: with a soft limit the heap's GC trigger lands at the
 *    midpoint between live bytes and the limit;
 *  - retired-span cache cap and eviction counters;
 *  - SpanMap chaos: injected mmap failure at span acquisition falls
 *    back to the legacy allocation path, crash-free;
 *  - FatalReport: a run that camps over the limit ends in a
 *    structured OOM record and a panicked RunResult, never a bare
 *    throw out of the driver loop;
 *  - determinism: ladder counters, peak bytes and the OOM record are
 *    byte-identical across gcWorkers 1/2/4 and pool/legacy backends.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chan/channel.hpp"
#include "gc/heap.hpp"
#include "gc/marker.hpp"
#include "gc/span.hpp"
#include "golf/collector.hpp"
#include "golf/report.hpp"
#include "mem/pressure.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

// ---------------------------------------------------------------
// PressureController
// ---------------------------------------------------------------

TEST(PressureControllerTest, DisabledWithoutLimit)
{
    mem::PressureController c{mem::MemConfig{}, 0};
    EXPECT_FALSE(c.enabled());
    EXPECT_EQ(c.ratio(1 << 30), 0.0);
    EXPECT_EQ(c.rung(1 << 30), mem::PressureRung::None);
    const mem::PressureActions a = c.poll(1 << 30);
    EXPECT_FALSE(a.scavenge || a.forceGolf || a.fatal);
}

TEST(PressureControllerTest, RungsRiseWithRatio)
{
    mem::PressureController c{mem::MemConfig{}, 1000};
    EXPECT_EQ(c.rung(100), mem::PressureRung::None);
    EXPECT_EQ(c.rung(500), mem::PressureRung::PaceGc);
    EXPECT_EQ(c.rung(750), mem::PressureRung::Scavenge);
    EXPECT_EQ(c.rung(850), mem::PressureRung::ForcedGolf);
    EXPECT_EQ(c.rung(950), mem::PressureRung::Shed);
    // Over the limit but inside the grace window: still Shed.
    EXPECT_EQ(c.rung(1100), mem::PressureRung::Shed);
}

TEST(PressureControllerTest, RungNamesAreStable)
{
    EXPECT_STREQ(mem::rungName(mem::PressureRung::None), "none");
    EXPECT_STREQ(mem::rungName(mem::PressureRung::PaceGc), "pace-gc");
    EXPECT_STREQ(mem::rungName(mem::PressureRung::Scavenge),
                 "scavenge");
    EXPECT_STREQ(mem::rungName(mem::PressureRung::ForcedGolf),
                 "forced-golf");
    EXPECT_STREQ(mem::rungName(mem::PressureRung::Shed), "shed");
    EXPECT_STREQ(mem::rungName(mem::PressureRung::FatalReport),
                 "fatal-report");
}

TEST(PressureControllerTest, ActionsFireOncePerExcursion)
{
    mem::PressureController c{mem::MemConfig{}, 1000};
    mem::PressureActions a = c.poll(800);
    EXPECT_TRUE(a.scavenge);
    EXPECT_FALSE(a.forceGolf);
    // Camping above the threshold must not re-fire.
    a = c.poll(820);
    EXPECT_FALSE(a.scavenge);
    // A cycle ending still above scavengeAt keeps it armed-off...
    c.onGcCycle(790);
    a = c.poll(800);
    EXPECT_FALSE(a.scavenge);
    // ...and one ending below re-arms it.
    c.onGcCycle(600);
    a = c.poll(800);
    EXPECT_TRUE(a.scavenge);
    // forceGolf has its own excursion state.
    a = c.poll(900);
    EXPECT_TRUE(a.forceGolf);
    a = c.poll(900);
    EXPECT_FALSE(a.forceGolf);
}

TEST(PressureControllerTest, FatalNeedsConsecutiveOverLimitCycles)
{
    mem::MemConfig mc;
    mc.fatalGraceCycles = 3;
    mem::PressureController c{mc, 1000};
    for (int i = 0; i < 2; ++i) {
        c.onGcCycle(1200);
        EXPECT_FALSE(c.poll(1200).fatal) << "cycle " << i;
    }
    // A cycle that gets back under resets the streak.
    c.onGcCycle(900);
    EXPECT_EQ(c.overLimitCycles(), 0);
    for (int i = 0; i < 3; ++i)
        c.onGcCycle(1200);
    EXPECT_EQ(c.overLimitCycles(), 3);
    EXPECT_TRUE(c.poll(1200).fatal);
    EXPECT_EQ(c.rung(1200), mem::PressureRung::FatalReport);
    // Dropping back under the limit clears the fatal condition even
    // with the streak still counted.
    EXPECT_FALSE(c.poll(800).fatal);
}

// ---------------------------------------------------------------
// Heap: pacer cap, cache cap, SpanMap fallback
// ---------------------------------------------------------------

/** A managed object with N inline payload bytes — the payload lives
 *  in the span, so sizing N sizes the span-class traffic. */
template <size_t N>
struct Chunk final : gc::Object
{
    Chunk() { pad[0] = 0xAB; }
    unsigned char pad[N];
    void trace(gc::Marker&) override {}
    const char* objectName() const override { return "chunk"; }
};

/** Payload bytes that land an allocation in its own 64 KiB span. */
constexpr size_t kBig = 40000;

void
collectAll(gc::Heap& heap)
{
    gc::Marker m = heap.beginCycle();
    m.drain();
    heap.sweep(m);
}

TEST(MemHeapTest, SoftLimitCapsThePacingTrigger)
{
    gc::HeapConfig hc;
    hc.minTriggerBytes = 100 * 1024 * 1024; // would never fire alone
    hc.softLimitBytes = 1024 * 1024;
    gc::Heap heap(hc);

    // Below the midpoint (512 KiB): the cap holds the trigger at
    // roughly live + (limit - live) / 2, so no collection yet.
    std::vector<gc::Object*> keep;
    while (heap.liveBytes() < 300 * 1024)
        keep.push_back(heap.make<Chunk<kBig>>());
    EXPECT_FALSE(heap.shouldCollect());

    // Past the midpoint the capped trigger must fire long before
    // minTriggerBytes would have.
    while (heap.liveBytes() < 800 * 1024 && !heap.shouldCollect())
        keep.push_back(heap.make<Chunk<kBig>>());
    EXPECT_TRUE(heap.shouldCollect());

    // Over the limit the cap floors at one span of headroom.
    collectAll(heap); // everything dies; repace from ~zero
    EXPECT_FALSE(heap.shouldCollect());
}

TEST(MemHeapTest, RetiredCacheCapEvictsAndScavengeReleases)
{
    gc::HeapConfig hc;
    hc.retiredCacheCap = 2;
    gc::Heap heap(hc);
    const gc::PoolStats& ps = heap.poolStats();

    // Eight large objects: eight spans; killing them retires all
    // eight, but only two may park in the reuse cache.
    std::vector<gc::Object*> keep;
    for (int i = 0; i < 8; ++i)
        heap.make<Chunk<kBig>>();
    collectAll(heap);
    EXPECT_EQ(ps.cachedSpans, 2u);
    EXPECT_EQ(ps.evictedSpans, 6u);

    // Scavenge with keep=1 releases one more; keep=0 empties it.
    EXPECT_EQ(heap.scavenge(1), 1u);
    EXPECT_EQ(ps.cachedSpans, 1u);
    EXPECT_EQ(heap.scavenge(0), 1u);
    EXPECT_EQ(ps.cachedSpans, 0u);
    EXPECT_EQ(ps.scavengedSpans, 2u);
    EXPECT_EQ(heap.scavenge(0), 0u);
    EXPECT_TRUE(heap.verifyPool().empty());
}

TEST(MemHeapTest, SpanMapFaultFallsBackToLegacyPath)
{
    gc::Heap heap;
    const gc::PoolStats& ps = heap.poolStats();
    int denials = 0;
    heap.setSpanFaultHook([&denials]() {
        ++denials;
        return true; // every span acquisition fails
    });

    // Small and large allocations must both survive the denial by
    // taking the legacy (malloc-backed) path.
    const uint64_t spansBefore = ps.spans;
    gc::Object* small = heap.make<Chunk<16>>();
    gc::Object* large = heap.make<Chunk<kBig>>();
    ASSERT_NE(small, nullptr);
    ASSERT_NE(large, nullptr);
    EXPECT_GT(ps.spanMapFaults, 0u);
    EXPECT_EQ(ps.spans, spansBefore);
    EXPECT_GT(denials, 0);
    EXPECT_TRUE(heap.verifyPool().empty());

    // Lifting the fault restores span service.
    heap.setSpanFaultHook(nullptr);
    gc::Object* pooled = heap.make<Chunk<16>>();
    ASSERT_NE(pooled, nullptr);
    EXPECT_GT(ps.spans, spansBefore);
    collectAll(heap);
    EXPECT_TRUE(heap.verifyPool().empty());
}

// ---------------------------------------------------------------
// Runtime: the FatalReport rung end to end
// ---------------------------------------------------------------

Go
leakHolder(Runtime* rtp)
{
    gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 128));
    co_await chan::recv(ch.get()); // blocks forever; pins the buffer
    co_return;
}

Go
leakUntilFatal(Runtime* rtp)
{
    // Far more leaks than the limit admits; the ladder's FatalReport
    // ends the run long before the loop does.
    for (int i = 0; i < 200000; ++i) {
        GOLF_GO(*rtp, leakHolder, rtp);
        if ((i & 7) == 0)
            co_await rt::yield();
    }
    co_return;
}

rt::Config
fatalConfig()
{
    rt::Config rc;
    rc.seed = 11;
    rc.recovery = rt::Recovery::Detect; // detect but never reclaim
    rc.heap.softLimitBytes = 256 * 1024;
    rc.heap.minTriggerBytes = 32 * 1024;
    return rc;
}

TEST(MemRuntimeTest, OverLimitRunEndsInStructuredFatalOom)
{
    rt::Config rc = fatalConfig();
    Runtime rt(rc);
    rt::RunResult rr = rt.runMain(leakUntilFatal, &rt);

    EXPECT_TRUE(rr.panicked);
    EXPECT_NE(rr.panicMessage.find("soft heap limit exceeded"),
              std::string::npos)
        << rr.panicMessage;
    EXPECT_EQ(rt.fatalOoms(), 1u);
    // The ladder climbed through its lower rungs on the way up.
    EXPECT_GE(rt.memScavenges(), 1u);
    EXPECT_GE(rt.memForcedGolfs(), 1u);

    const auto& ooms = rt.collector().reports().ooms();
    ASSERT_EQ(ooms.size(), 1u);
    EXPECT_EQ(ooms[0].softLimitBytes, rc.heap.softLimitBytes);
    EXPECT_GE(ooms[0].liveBytes, rc.heap.softLimitBytes);
    EXPECT_EQ(ooms[0].what, rr.panicMessage);
}

TEST(MemRuntimeTest, FatalOomDeterministicAcrossWorkersAndBackends)
{
    struct Surface
    {
        std::string panicMessage;
        std::string oomStr;
        uint64_t heapPeak;
        uint64_t scavenges;
        uint64_t forcedGolfs;
        uint64_t cycles;
    };
    auto run = [](gc::AllocBackend backend, int workers) {
        rt::Config rc = fatalConfig();
        rc.heap.backend = backend;
        rc.gcWorkers = workers;
        Runtime rt(rc);
        rt::RunResult rr = rt.runMain(leakUntilFatal, &rt);
        EXPECT_TRUE(rr.panicked);
        const auto& ooms = rt.collector().reports().ooms();
        EXPECT_EQ(ooms.size(), 1u);
        return Surface{rr.panicMessage,
                       ooms.empty() ? "" : ooms[0].str(),
                       rt.heap().peakLiveBytes(), rt.memScavenges(),
                       rt.memForcedGolfs(), rt.collector().cycles()};
    };
    const Surface base = run(gc::AllocBackend::Pool, 1);
    ASSERT_FALSE(base.oomStr.empty());
    for (gc::AllocBackend backend :
         {gc::AllocBackend::Pool, gc::AllocBackend::Legacy}) {
        for (int workers : {1, 2, 4}) {
            const Surface s = run(backend, workers);
            const std::string what =
                std::string(backend == gc::AllocBackend::Pool
                                ? "pool"
                                : "legacy") +
                " gcWorkers=" + std::to_string(workers);
            EXPECT_EQ(s.panicMessage, base.panicMessage) << what;
            EXPECT_EQ(s.oomStr, base.oomStr) << what;
            EXPECT_EQ(s.heapPeak, base.heapPeak) << what;
            EXPECT_EQ(s.scavenges, base.scavenges) << what;
            EXPECT_EQ(s.forcedGolfs, base.forcedGolfs) << what;
            EXPECT_EQ(s.cycles, base.cycles) << what;
        }
    }
}

TEST(MemRuntimeTest, LadderCountersIdenticalAcrossBackends)
{
    // A survivable limit over the microbench corpus slice: whatever
    // the ladder does (or doesn't), it must not notice the backend
    // or the worker count.
    const auto& all = microbench::Registry::instance().all();
    ASSERT_FALSE(all.empty());
    const microbench::Pattern& p = all.front();

    auto run = [&](gc::AllocBackend backend, int workers) {
        microbench::HarnessConfig cfg;
        cfg.seed = 5;
        cfg.procs = 2;
        cfg.gcWorkers = workers;
        cfg.heap.backend = backend;
        cfg.heap.softLimitBytes = 256 * 1024;
        cfg.mem.scavengeOnGc = true;
        return microbench::runPatternOnce(p, cfg);
    };
    const microbench::RunOutcome base = run(gc::AllocBackend::Pool, 1);
    for (gc::AllocBackend backend :
         {gc::AllocBackend::Pool, gc::AllocBackend::Legacy}) {
        for (int workers : {1, 2, 4}) {
            const microbench::RunOutcome s = run(backend, workers);
            const std::string what =
                std::string(backend == gc::AllocBackend::Pool
                                ? "pool"
                                : "legacy") +
                " gcWorkers=" + std::to_string(workers);
            EXPECT_EQ(s.runtimeFailure, base.runtimeFailure) << what;
            EXPECT_EQ(s.failureMessage, base.failureMessage) << what;
            EXPECT_EQ(s.heapPeak, base.heapPeak) << what;
            EXPECT_EQ(s.memScavenges, base.memScavenges) << what;
            EXPECT_EQ(s.memForcedGolfs, base.memForcedGolfs) << what;
            EXPECT_EQ(s.fatalOoms, base.fatalOoms) << what;
            EXPECT_EQ(s.gcCycles, base.gcCycles) << what;
        }
    }
}

// ---------------------------------------------------------------
// OomRecord formatting
// ---------------------------------------------------------------

TEST(OomRecordTest, StrFormatIsStable)
{
    detect::OomRecord r;
    r.goroutineId = 7;
    r.liveBytes = 1048576;
    r.softLimitBytes = 524288;
    r.what = "soft heap limit exceeded for 4 consecutive GC cycles";
    r.vtime = 1500000000;
    EXPECT_EQ(r.str(),
              "fatal oom! goroutine 7: soft heap limit exceeded for "
              "4 consecutive GC cycles (live=1048576 limit=524288 "
              "t=1500000000ns)");
}

} // namespace
} // namespace golf
