/**
 * @file
 * Heap and marker tests: allocation accounting, reachability through
 * trace(), sweep, resurrection-by-finalizer, pacing, global roots,
 * masked-address protection.
 */
#include <gtest/gtest.h>

#include "gc/heap.hpp"
#include "gc/marker.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "support/masked_ptr.hpp"

namespace golf {
namespace {

/** A managed node with one traced edge. */
class TNode : public gc::Object
{
  public:
    explicit TNode(TNode* next = nullptr) : next_(next) {}

    void
    trace(gc::Marker& m) override
    {
        m.mark(next_);
    }

    const char* objectName() const override { return "tnode"; }

    TNode* next_;
    int value = 0;
};

int gDestroyed = 0;

class CountingNode : public gc::Object
{
  public:
    ~CountingNode() override { ++gDestroyed; }
};

TEST(HeapTest, AllocationAccounting)
{
    gc::Heap heap;
    EXPECT_EQ(heap.liveObjects(), 0u);
    TNode* n = heap.make<TNode>();
    EXPECT_TRUE(heap.owns(n));
    EXPECT_EQ(heap.liveObjects(), 1u);
    EXPECT_GE(heap.liveBytes(), sizeof(TNode));
    EXPECT_EQ(heap.stats().heapObjects, 1u);
}

TEST(HeapTest, DoesNotOwnForeignObjects)
{
    gc::Heap heap;
    TNode stackNode;
    EXPECT_FALSE(heap.owns(&stackNode));
    EXPECT_FALSE(heap.owns(nullptr));
}

TEST(HeapTest, SweepFreesUnmarked)
{
    gDestroyed = 0;
    gc::Heap heap;
    heap.make<CountingNode>();
    heap.make<CountingNode>();
    gc::Marker m = heap.beginCycle();
    m.drain();
    EXPECT_EQ(heap.sweep(m), 2u);
    EXPECT_EQ(gDestroyed, 2);
    EXPECT_EQ(heap.liveObjects(), 0u);
    EXPECT_GT(heap.stats().totalFreed, 0u);
}

TEST(HeapTest, MarkedObjectsSurviveSweep)
{
    gc::Heap heap;
    TNode* keep = heap.make<TNode>();
    heap.make<TNode>(); // garbage
    gc::Marker m = heap.beginCycle();
    m.mark(keep);
    m.drain();
    EXPECT_EQ(heap.sweep(m), 1u);
    EXPECT_EQ(heap.liveObjects(), 1u);
    EXPECT_TRUE(heap.owns(keep));
}

TEST(HeapTest, TransitiveReachabilityThroughTrace)
{
    gc::Heap heap;
    TNode* c = heap.make<TNode>();
    TNode* b = heap.make<TNode>(c);
    TNode* a = heap.make<TNode>(b);
    gc::Marker m = heap.beginCycle();
    m.mark(a);
    m.drain();
    EXPECT_TRUE(m.isMarked(a));
    EXPECT_TRUE(m.isMarked(b));
    EXPECT_TRUE(m.isMarked(c));
    EXPECT_EQ(heap.sweep(m), 0u);
}

TEST(HeapTest, CyclesAreCollected)
{
    gDestroyed = 0;
    gc::Heap heap;
    TNode* a = heap.make<TNode>();
    TNode* b = heap.make<TNode>(a);
    a->next_ = b; // cycle, unreachable from any root
    gc::Marker m = heap.beginCycle();
    m.drain();
    EXPECT_EQ(heap.sweep(m), 2u);
}

TEST(HeapTest, GlobalRootsKeepObjectsAlive)
{
    gc::Heap heap;
    gc::GlobalRoot<TNode> root(heap, heap.make<TNode>());
    gc::Marker m = heap.beginCycle();
    heap.globalRoots().traceInto(m);
    m.drain();
    EXPECT_EQ(heap.sweep(m), 0u);
    EXPECT_TRUE(heap.owns(root.get()));
}

TEST(HeapTest, EpochBumpWhitensPreviousMarks)
{
    gc::Heap heap;
    TNode* n = heap.make<TNode>();
    gc::Marker m1 = heap.beginCycle();
    m1.mark(n);
    EXPECT_TRUE(heap.isMarked(n));
    gc::Marker m2 = heap.beginCycle();
    EXPECT_FALSE(heap.isMarked(n));
    EXPECT_FALSE(m2.isMarked(n));
    (void)m2;
}

TEST(HeapTest, MarkingWorkIsCounted)
{
    gc::Heap heap;
    TNode* b = heap.make<TNode>();
    TNode* a = heap.make<TNode>(b);
    gc::Marker m = heap.beginCycle();
    m.mark(a);
    m.drain();
    EXPECT_EQ(m.objectsMarked(), 2u);
    // a marked once, a->trace marks b, b->trace marks null (ignored).
    EXPECT_GE(m.pointersTraversed(), 2u);
}

TEST(HeapTest, FinalizerResurrectsForOneCycle)
{
    gDestroyed = 0;
    gc::Heap heap;
    CountingNode* n = heap.make<CountingNode>();
    int finalized = 0;
    heap.setFinalizer(n, [&] { ++finalized; });

    // Cycle 1: unreachable, but the finalizer runs and the object
    // survives the sweep (Go's one-cycle grace).
    gc::Marker m1 = heap.beginCycle();
    m1.drain();
    EXPECT_EQ(heap.sweep(m1), 0u);
    EXPECT_EQ(heap.runFinalizers(), 1u);
    EXPECT_EQ(finalized, 1);
    EXPECT_EQ(gDestroyed, 0);

    // Cycle 2: still unreachable, no finalizer left: freed.
    gc::Marker m2 = heap.beginCycle();
    m2.drain();
    EXPECT_EQ(heap.sweep(m2), 1u);
    EXPECT_EQ(gDestroyed, 1);
    EXPECT_EQ(finalized, 1);
}

TEST(HeapTest, FinalizerSeenFlagDuringMarking)
{
    gc::Heap heap;
    TNode* inner = heap.make<TNode>();
    TNode* outer = heap.make<TNode>(inner);
    heap.setFinalizer(inner, [] {});
    gc::Marker m = heap.beginCycle();
    EXPECT_FALSE(m.finalizerSeen());
    m.mark(outer);
    m.drain();
    EXPECT_TRUE(m.finalizerSeen());
    m.clearFinalizerSeen();
    EXPECT_FALSE(m.finalizerSeen());
}

TEST(HeapTest, PacingTriggersAfterGrowth)
{
    gc::HeapConfig cfg;
    cfg.minTriggerBytes = 4 * sizeof(TNode);
    gc::Heap heap(cfg);
    EXPECT_FALSE(heap.shouldCollect());
    for (int i = 0; i < 8; ++i)
        heap.make<TNode>();
    EXPECT_TRUE(heap.shouldCollect());
}

TEST(HeapTest, PacingRecomputedAfterSweep)
{
    gc::HeapConfig cfg;
    cfg.minTriggerBytes = 2 * sizeof(TNode);
    cfg.gcPercent = 100;
    gc::Heap heap(cfg);
    gc::GlobalRoot<TNode> root(heap, heap.make<TNode>());
    for (int i = 0; i < 8; ++i)
        heap.make<TNode>();
    EXPECT_TRUE(heap.shouldCollect());
    gc::Marker m = heap.beginCycle();
    heap.globalRoots().traceInto(m);
    m.drain();
    heap.sweep(m);
    EXPECT_FALSE(heap.shouldCollect());
}

TEST(HeapTest, ChargeAddsBytes)
{
    gc::Heap heap;
    TNode* n = heap.make<TNode>();
    uint64_t before = heap.liveBytes();
    heap.charge(n, 1000);
    EXPECT_EQ(heap.liveBytes(), before + 1000);
}

TEST(MarkerTest, MaskedAddressIsRejected)
{
    gc::Heap heap;
    TNode* n = heap.make<TNode>();
    auto masked = reinterpret_cast<gc::Object*>(
        support::maskAddress(reinterpret_cast<uintptr_t>(n)));
    gc::Marker m = heap.beginCycle();
    EXPECT_DEATH(m.mark(masked), "masked");
    // Clean up: finish the cycle marking the real object.
    m.mark(n);
    m.drain();
    heap.sweep(m);
}

TEST(LocalTest, LocalRootsObjectInsideGoroutine)
{
    rt::Config cfg;
    cfg.heap.minTriggerBytes = 1; // collect at every opportunity
    rt::Runtime runtime(cfg);
    bool alive = false;
    runtime.runMain(
        +[](rt::Runtime* rtp, bool* alivep) -> rt::Go {
            gc::Local<TNode> keep(rtp->make<TNode>());
            rtp->make<TNode>(); // garbage
            co_await rt::gcNow();
            *alivep = rtp->heap().owns(keep.get());
            co_return;
        },
        &runtime, &alive);
    EXPECT_TRUE(alive);
}

TEST(LocalTest, DroppingLocalAllowsCollection)
{
    rt::Runtime runtime;
    size_t liveAfter = 0;
    runtime.runMain(
        +[](rt::Runtime* rtp, size_t* out) -> rt::Go {
            {
                gc::Local<TNode> temp(rtp->make<TNode>());
                co_await rt::gcNow();
                EXPECT_EQ(rtp->heap().liveObjects(), 1u);
            }
            co_await rt::gcNow();
            *out = rtp->heap().liveObjects();
            co_return;
        },
        &runtime, &liveAfter);
    EXPECT_EQ(liveAfter, 0u);
}

} // namespace
} // namespace golf
