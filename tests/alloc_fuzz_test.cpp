/**
 * @file
 * Pool-allocator fuzz suite (ctest label `alloc`).
 *
 * Seeded random alloc/free/GC interleavings against a shadow-map
 * oracle that knows nothing about spans:
 *
 *  - no double-serve: an address is never handed out while an object
 *    the oracle believes live still occupies it;
 *  - tenant integrity: every object carries a construction tag that
 *    must survive until the oracle frees it (overlapping slots or a
 *    sweep of a live slot would clobber it);
 *  - accounting: sum over spans of popcount(liveBits) equals
 *    Heap::liveObjects(), and Heap::verifyPool() holds after every
 *    collection;
 *  - poison: a swept small slot reads back 0xDD end to end until its
 *    span is reintegrated;
 *  - large objects (> kMaxSmallSize) round-trip through their own
 *    span path, and the PoolStats span counters return to baseline
 *    once they die.
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "gc/heap.hpp"
#include "gc/marker.hpp"
#include "gc/span.hpp"
#include "support/rng.hpp"

namespace golf {
namespace {

constexpr uint64_t kTagSeed = 0x9e3779b97f4a7c15ull;

/** A managed object with N payload bytes and a tamper-evident tag. */
template <size_t N>
struct Blob final : gc::Object
{
    explicit Blob(uint64_t t) : tag(t)
    {
        for (size_t i = 0; i < N; ++i)
            pad[i] = static_cast<unsigned char>(t + i);
    }

    bool
    intact() const
    {
        for (size_t i = 0; i < N; ++i) {
            if (pad[i] != static_cast<unsigned char>(tag + i))
                return false;
        }
        return true;
    }

    uint64_t tag;
    unsigned char pad[N];

    void trace(gc::Marker&) override {}
    const char* objectName() const override { return "blob"; }
};

/** One live tenant as the oracle sees it. */
struct Tenant
{
    gc::Object* obj = nullptr;
    uint64_t tag = 0;
    size_t sizeIdx = 0;
};

struct SizeEntry
{
    gc::Object* (*make)(gc::Heap&, uint64_t tag);
    bool (*check)(const gc::Object*, uint64_t tag);
    size_t bytes;
};

template <size_t N>
SizeEntry
entry()
{
    return {
        +[](gc::Heap& h, uint64_t tag) -> gc::Object* {
            return h.make<Blob<N>>(tag);
        },
        +[](const gc::Object* o, uint64_t tag) {
            const auto* b = static_cast<const Blob<N>*>(o);
            return b->tag == tag && b->intact();
        },
        sizeof(Blob<N>),
    };
}

/** Payload sizes spanning the class ladder plus two large classes. */
const std::vector<SizeEntry>&
sizeTable()
{
    static const std::vector<SizeEntry> table = {
        entry<1>(),    entry<24>(),   entry<56>(),   entry<120>(),
        entry<250>(),  entry<500>(),  entry<1000>(), entry<2000>(),
        entry<3900>(), entry<6000>(), entry<40000>(),
    };
    return table;
}

/** Sum of popcount(liveBits) across every span in service. */
uint64_t
poolLivePopcount(const gc::Heap& heap)
{
    uint64_t live = 0;
    for (const gc::Span* s : heap.spans()) {
        const uint32_t words = s->bitmapWords();
        for (uint32_t w = 0; w < words; ++w)
            live += static_cast<uint64_t>(
                __builtin_popcountll(s->liveBits[w]));
    }
    return live;
}

/** Mark every oracle-live object, then sweep. */
size_t
collect(gc::Heap& heap, const std::vector<Tenant>& live)
{
    gc::Marker m = heap.beginCycle();
    for (const Tenant& t : live)
        m.mark(t.obj);
    m.drain();
    return heap.sweep(m);
}

TEST(AllocFuzzTest, RandomAllocFreeAgainstShadowMap)
{
    const auto& table = sizeTable();
    for (uint64_t seed : {1ull, 77ull, 20260809ull}) {
        support::Rng rng(seed);
        gc::Heap heap;
        std::vector<Tenant> live;
        std::map<const void*, uint64_t> occupied; // addr -> tag
        uint64_t nextTag = seed * kTagSeed + 1;
        size_t frees = 0;

        for (int op = 0; op < 4000; ++op) {
            const uint64_t roll = rng.nextBelow(100);
            if (roll < 55 || live.empty()) {
                // Allocate. The address must not collide with any
                // tenant the oracle still believes live.
                const size_t si = rng.nextBelow(table.size());
                const uint64_t tag = nextTag++;
                gc::Object* obj = table[si].make(heap, tag);
                ASSERT_EQ(occupied.count(obj), 0u)
                    << "seed=" << seed << " op=" << op
                    << ": address served twice while live";
                occupied.emplace(obj, tag);
                live.push_back({obj, tag, si});
            } else if (roll < 90) {
                // Drop a random tenant; it dies at the next cycle.
                // Its payload must still be intact right now.
                const size_t vi = rng.nextBelow(live.size());
                const Tenant t = live[vi];
                ASSERT_TRUE(table[t.sizeIdx].check(t.obj, t.tag))
                    << "seed=" << seed << " op=" << op
                    << ": tenant clobbered before its free";
                occupied.erase(t.obj);
                live[vi] = live.back();
                live.pop_back();
                ++frees;
            } else {
                // Collect: everything dropped since the last cycle
                // dies; everything in `live` must survive.
                collect(heap, live);
                ASSERT_EQ(heap.liveObjects(), live.size())
                    << "seed=" << seed << " op=" << op;
                ASSERT_EQ(poolLivePopcount(heap), live.size())
                    << "seed=" << seed << " op=" << op;
                const std::string v = heap.verifyPool();
                ASSERT_TRUE(v.empty())
                    << "seed=" << seed << " op=" << op << ": " << v;
            }
        }
        EXPECT_GT(frees, 0u);

        // Final cycle, then full integrity sweep over survivors.
        collect(heap, live);
        for (const Tenant& t : live) {
            EXPECT_TRUE(table[t.sizeIdx].check(t.obj, t.tag))
                << "seed=" << seed << ": survivor clobbered";
        }
        EXPECT_EQ(heap.liveObjects(), live.size());
        EXPECT_EQ(poolLivePopcount(heap), live.size());
        EXPECT_TRUE(heap.verifyPool().empty());
        // ~Heap tears down every survivor and unmaps every span.
    }
}

TEST(AllocFuzzTest, SweptSlotIsPoisoned)
{
    gc::Heap heap; // poisonFreed defaults to true
    std::vector<Tenant> live;
    const auto& table = sizeTable();
    const size_t si = 4; // 250-byte payload: mid-ladder class
    gc::Object* doomed = table[si].make(heap, 42);
    const gc::Span* span = gc::Span::of(doomed);
    const uint32_t slot = span->slotIndexOf(doomed);
    const auto* bytes =
        static_cast<const unsigned char*>(span->slotAt(slot));
    const uint32_t slotSize = span->slotSize;

    collect(heap, live); // nothing rooted: doomed dies
    ASSERT_EQ(heap.liveObjects(), 0u);
    // The span parks in PendingSweep; its storage stays mapped and
    // the dead slot must read 0xDD end to end.
    for (uint32_t i = 0; i < slotSize; ++i) {
        ASSERT_EQ(bytes[i], 0xDD)
            << "slot byte " << i << " not poisoned";
    }

    // Reuse: the next same-class allocation reintegrates the span
    // and may serve the poisoned slot; construction overwrites it.
    gc::Object* next = table[si].make(heap, 43);
    EXPECT_TRUE(table[si].check(next, 43));
    EXPECT_TRUE(heap.verifyPool().empty());
}

TEST(AllocFuzzTest, LargeObjectsRoundTrip)
{
    gc::Heap heap;
    const gc::PoolStats& ps = heap.poolStats();
    const uint64_t baseLarge = ps.largeSpans;
    const uint64_t baseBytes = ps.spanBytes;

    std::vector<Tenant> live;
    const auto& table = sizeTable();
    const size_t si = table.size() - 1; // 40000-byte payload
    ASSERT_GT(table[si].bytes, gc::kMaxSmallSize);

    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 8; ++i) {
            uint64_t tag = static_cast<uint64_t>(round * 100 + i);
            live.push_back({table[si].make(heap, tag), tag, si});
        }
        EXPECT_EQ(ps.largeSpans, baseLarge + 8);
        EXPECT_GT(ps.spanBytes, baseBytes);
        for (const Tenant& t : live)
            EXPECT_TRUE(table[si].check(t.obj, t.tag));
        EXPECT_TRUE(heap.verifyPool().empty());
        live.clear();
        collect(heap, live);
        // Large spans return their storage immediately at sweep.
        EXPECT_EQ(ps.largeSpans, baseLarge);
        EXPECT_EQ(ps.spanBytes, baseBytes);
        EXPECT_EQ(heap.liveObjects(), 0u);
    }
}

TEST(AllocFuzzTest, FreedSlotReusedNotDoubleServed)
{
    gc::Heap heap;
    std::vector<Tenant> live;
    const auto& table = sizeTable();
    const size_t si = 2; // one small class, one span

    gc::Object* first = table[si].make(heap, 7);
    const void* firstAddr = first;
    collect(heap, live); // first dies
    ASSERT_EQ(heap.liveObjects(), 0u);

    // The only span of this class has exactly one pending slot; the
    // next allocation must lazily sweep and reuse that address...
    gc::Object* second = table[si].make(heap, 8);
    EXPECT_EQ(static_cast<const void*>(second), firstAddr)
        << "lazy sweep did not recycle the freed slot";
    // ...and while `second` lives there, a further allocation must
    // get a different address.
    live.push_back({second, 8, si});
    gc::Object* third = table[si].make(heap, 9);
    EXPECT_NE(static_cast<const void*>(third),
              static_cast<const void*>(second));
    EXPECT_TRUE(table[si].check(second, 8));
    EXPECT_TRUE(table[si].check(third, 9));
    EXPECT_TRUE(heap.verifyPool().empty());
}

TEST(AllocFuzzTest, ChurnKeepsSpanCountBounded)
{
    // Recycling means steady-state churn must not grow the span set:
    // run many allocate-all/drop-all waves of one class and require
    // the span count to stabilize after the first wave.
    gc::Heap heap;
    const auto& table = sizeTable();
    const size_t si = 3;
    std::vector<Tenant> live;

    uint64_t spansAfterFirstWave = 0;
    for (int wave = 0; wave < 10; ++wave) {
        for (int i = 0; i < 500; ++i) {
            uint64_t tag = static_cast<uint64_t>(wave * 1000 + i);
            live.push_back({table[si].make(heap, tag), tag, si});
        }
        live.clear();
        collect(heap, live);
        const uint64_t spans = heap.poolStats().spans;
        if (wave == 0)
            spansAfterFirstWave = spans;
        else
            EXPECT_LE(spans, spansAfterFirstWave)
                << "wave " << wave << " grew the span set";
    }
    EXPECT_GT(heap.poolStats().slotsRecycled, 0u);
    EXPECT_TRUE(heap.verifyPool().empty());
}

TEST(AllocFuzzTest, ScavengeReacquireRounds)
{
    // Scavenge/re-acquire fuzz: rounds of churn -> scavenge ->
    // re-allocate, with a fake release seam that withholds the
    // munmap. The withheld mappings keep their addresses reserved,
    // so if the pool ever served a slot from a span it told the
    // scavenger it released, the address would land inside a
    // withheld range and the oracle below would catch it.
    std::vector<std::pair<const unsigned char*, size_t>> withheld;
    {
        gc::HeapConfig hc;
        hc.retiredCacheCap = 4; // force evictions through the seam too
        gc::Heap heap(hc);
        heap.setReleaseSeam([&withheld](void* p, size_t bytes) {
            withheld.emplace_back(
                static_cast<const unsigned char*>(p), bytes);
        });

        const auto& table = sizeTable();
        const gc::PoolStats& ps = heap.poolStats();
        std::vector<Tenant> live;
        support::Rng rng(0x5CA4ull);
        uint64_t nextTag = 1;

        for (int round = 0; round < 6; ++round) {
            for (int i = 0; i < 400; ++i) {
                const size_t si = rng.nextBelow(table.size() - 1);
                const uint64_t tag = nextTag++;
                gc::Object* obj = table[si].make(heap, tag);
                const auto* addr =
                    reinterpret_cast<const unsigned char*>(obj);
                for (const auto& [base, bytes] : withheld) {
                    ASSERT_FALSE(addr >= base && addr < base + bytes)
                        << "round " << round
                        << ": slot served from a scavenged span";
                }
                live.push_back({obj, tag, si});
            }
            for (const Tenant& t : live)
                ASSERT_TRUE(table[t.sizeIdx].check(t.obj, t.tag))
                    << "round " << round << ": tenant clobbered";
            live.clear();
            collect(heap, live);
            heap.scavenge(/*keepSpans=*/1);
            ASSERT_TRUE(heap.verifyPool().empty());
        }
        EXPECT_GT(ps.scavengedSpans, 0u);
        EXPECT_GT(ps.evictedSpans, 0u);
        // Reused (cached, never released) spans still poison their
        // swept slots: a fresh allocation after the scavenge rounds
        // constructs over 0xDD, not over stale tenant bytes.
        gc::Object* probe = table[4].make(heap, nextTag);
        EXPECT_TRUE(table[4].check(probe, nextTag));
        EXPECT_TRUE(heap.verifyPool().empty());
    }
    // The seam withheld real mappings; return them to the OS now
    // that the heap (and every address comparison) is gone.
    for (const auto& [base, bytes] : withheld)
        gc::Heap::osRelease(const_cast<unsigned char*>(base), bytes);
}

TEST(AllocFuzzTest, PoisonIntactAcrossScavenge)
{
    // A pending-sweep slot must still read 0xDD after the retired
    // cache around it is scavenged to zero.
    gc::Heap heap;
    std::vector<Tenant> live;
    const auto& table = sizeTable();
    const size_t si = 4;
    gc::Object* doomed = table[si].make(heap, 42);
    const gc::Span* span = gc::Span::of(doomed);
    const auto* bytes = static_cast<const unsigned char*>(
        span->slotAt(span->slotIndexOf(doomed)));
    const uint32_t slotSize = span->slotSize;

    collect(heap, live);
    heap.scavenge(0);
    for (uint32_t i = 0; i < slotSize; ++i) {
        ASSERT_EQ(bytes[i], 0xDD)
            << "slot byte " << i << " not poisoned after scavenge";
    }
    gc::Object* next = table[si].make(heap, 43);
    EXPECT_TRUE(table[si].check(next, 43));
    EXPECT_TRUE(heap.verifyPool().empty());
}

} // namespace
} // namespace golf
