/**
 * @file
 * Corpus validation: the registry must match the paper's counts (73
 * deadlocking microbenchmarks, 121 leaky go instructions, 8 from the
 * CGO'24 suite and 113 from goker, 32 fixed variants = 105 programs),
 * deterministic benchmarks must detect at every site in every run,
 * and fixed variants must never trigger a report.
 */
#include <gtest/gtest.h>

#include "microbench/harness.hpp"
#include "microbench/registry.hpp"

namespace golf::microbench {
namespace {

TEST(CorpusTest, PaperCounts)
{
    Registry& reg = Registry::instance();
    EXPECT_EQ(reg.deadlocking().size(), 73u);
    EXPECT_EQ(reg.totalLeakSites(), 121u);
    EXPECT_EQ(reg.corrects().size(), 32u);
    EXPECT_EQ(reg.all().size(), 105u);

    size_t cgoPatterns = 0, cgoSites = 0;
    size_t gokerPatterns = 0, gokerSites = 0;
    for (const Pattern* p : reg.deadlocking()) {
        if (p->suite == "cgo-examples") {
            ++cgoPatterns;
            cgoSites += p->leakSites.size();
        } else if (p->suite == "goker") {
            ++gokerPatterns;
            gokerSites += p->leakSites.size();
        } else {
            ADD_FAILURE() << "unknown suite " << p->suite;
        }
    }
    EXPECT_EQ(cgoPatterns, 6u);
    EXPECT_EQ(cgoSites, 8u);    // Saioc et al.: 8 go instructions
    EXPECT_EQ(gokerPatterns, 67u);
    EXPECT_EQ(gokerSites, 113u); // Yuan et al.: 113 go instructions
}

TEST(CorpusTest, SiteLabelsAreUniqueAndWellFormed)
{
    Registry& reg = Registry::instance();
    std::set<std::string> seen;
    for (const Pattern* p : reg.deadlocking()) {
        EXPECT_FALSE(p->leakSites.empty())
            << p->name << " declares no leaky sites";
        for (const std::string& s : p->leakSites) {
            EXPECT_TRUE(seen.insert(s).second)
                << "duplicate site label " << s;
            EXPECT_NE(s.find(':'), std::string::npos) << s;
            EXPECT_EQ(s.rfind(p->name + ":", 0), 0u)
                << "site " << s << " not under " << p->name;
        }
    }
}

TEST(CorpusTest, CorrectVariantsShadowDeadlockingOnes)
{
    Registry& reg = Registry::instance();
    for (const Pattern* p : reg.corrects()) {
        EXPECT_NE(reg.find(p->name), nullptr)
            << "correct variant " << p->name
            << " has no deadlocking base";
        EXPECT_TRUE(p->leakSites.empty());
    }
}

class DeterministicPatternTest
    : public ::testing::TestWithParam<const Pattern*>
{};

TEST_P(DeterministicPatternTest, DetectsAllSitesInOneRun)
{
    const Pattern* p = GetParam();
    HarnessConfig cfg;
    cfg.procs = 1;
    cfg.seed = 12345;
    RunOutcome out = runPatternOnce(*p, cfg);
    EXPECT_FALSE(out.runtimeFailure)
        << p->name << ": " << out.failureMessage;
    for (const std::string& site : p->leakSites) {
        EXPECT_GT(out.detectedPerLabel[site], 0)
            << p->name << " site " << site << " undetected";
    }
    EXPECT_EQ(out.unexpectedReports, 0u) << p->name;
}

std::vector<const Pattern*>
deterministicPatterns()
{
    std::vector<const Pattern*> out;
    for (const Pattern* p : Registry::instance().deadlocking()) {
        if (p->flakiness == 1)
            out.push_back(p);
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DeterministicPatternTest,
    ::testing::ValuesIn(deterministicPatterns()),
    [](const auto& info) {
        std::string n = info.param->name;
        for (char& c : n) {
            if (c == '/' || c == '-')
                c = '_';
        }
        return n;
    });

class CorrectPatternTest
    : public ::testing::TestWithParam<const Pattern*>
{};

TEST_P(CorrectPatternTest, NeverReports)
{
    const Pattern* p = GetParam();
    HarnessConfig cfg;
    cfg.procs = 2;
    cfg.seed = 777;
    RunOutcome out = runPatternOnce(*p, cfg);
    EXPECT_FALSE(out.runtimeFailure)
        << p->name << ": " << out.failureMessage;
    EXPECT_EQ(out.individualReports, 0u) << p->name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorrectPatternTest,
    ::testing::ValuesIn(Registry::instance().corrects()),
    [](const auto& info) {
        std::string n = info.param->name;
        for (char& c : n) {
            if (c == '/' || c == '-')
                c = '_';
        }
        return n + "_fixed";
    });

class FlakyPatternTest : public ::testing::TestWithParam<const Pattern*>
{};

TEST_P(FlakyPatternTest, RunsWithoutCrashAcrossCores)
{
    const Pattern* p = GetParam();
    for (int procs : {1, 2, 4, 10}) {
        HarnessConfig cfg;
        cfg.procs = procs;
        cfg.seed = 4242 + static_cast<uint64_t>(procs);
        RunOutcome out = runPatternOnce(*p, cfg);
        EXPECT_FALSE(out.runtimeFailure)
            << p->name << " procs=" << procs << ": "
            << out.failureMessage;
        EXPECT_EQ(out.unexpectedReports, 0u)
            << p->name << " procs=" << procs;
    }
}

std::vector<const Pattern*>
flakyPatterns()
{
    std::vector<const Pattern*> out;
    for (const Pattern* p : Registry::instance().deadlocking()) {
        if (p->flakiness > 1)
            out.push_back(p);
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FlakyPatternTest, ::testing::ValuesIn(flakyPatterns()),
    [](const auto& info) {
        std::string n = info.param->name;
        for (char& c : n) {
            if (c == '/' || c == '-')
                c = '_';
        }
        return n;
    });

TEST(HarnessTest, ExactLeakCountsPerProgram)
{
    // The artifact's `// deadlocks: n` annotations with exact
    // constants: for deterministic programs the number of individual
    // reports per instance is fixed.
    struct Expect
    {
        const char* name;
        size_t perInstance;
    };
    const Expect cases[] = {
        {"cgo/ex1", 1},        // the forgotten async task
        {"cgo/ex3", 3},        // 4 repliers, first-response-wins
        {"cgo/ex5", 2},        // both range drainers
        {"cockroach/1055", 3}, // all three task workers
        {"etcd/10492", 2},
        {"kubernetes/30872", 3},
        {"moby/7559", 1},      // nil-channel receive
    };
    for (const auto& c : cases) {
        const Pattern* p = Registry::instance().find(c.name);
        ASSERT_NE(p, nullptr) << c.name;
        ASSERT_EQ(p->flakiness, 1) << c.name;
        HarnessConfig cfg;
        cfg.procs = 1;
        cfg.seed = 23;
        RunOutcome out = runPatternOnce(*p, cfg);
        // flakiness 1 => exactly one instance per run.
        EXPECT_EQ(out.individualReports, c.perInstance) << c.name;
    }
}

TEST(HarnessTest, InstancesScaleWithFlakiness)
{
    EXPECT_EQ(instancesForFlakiness(1, 24), 1);
    EXPECT_EQ(instancesForFlakiness(10, 24), 2);
    EXPECT_EQ(instancesForFlakiness(100, 24), 4);
    EXPECT_EQ(instancesForFlakiness(1000, 24), 8);
    EXPECT_EQ(instancesForFlakiness(10000, 24), 16);
    EXPECT_EQ(instancesForFlakiness(10000, 8), 8); // clamped
}

TEST(HarnessTest, RepeatedRunsCountPerSiteDetections)
{
    const Pattern* p = Registry::instance().find("cgo/ex1");
    ASSERT_NE(p, nullptr);
    HarnessConfig cfg;
    cfg.procs = 2;
    cfg.seed = 9;
    auto sites = runPatternRepeated(*p, cfg, 5);
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].totalRuns, 5);
    EXPECT_EQ(sites[0].detectedRuns, 5); // deterministic bug
}

} // namespace
} // namespace golf::microbench
