/**
 * @file
 * Property tests for the paper's soundness theorem (Section 4.3):
 * LIVE(g) implies LIVE+(g) — a goroutine that can make progress must
 * never be reported as deadlocked, because a false positive would let
 * the runtime reclaim live memory.
 *
 * We generate randomized *completable* programs (every goroutine is
 * guaranteed to finish: matched sends/receives, closed pipelines,
 * balanced waitgroups, released mutexes) under aggressive GC pacing
 * and assert: zero reports, no crashes, main completes, and the heap
 * is empty afterwards. Parameterized over seeds and virtual core
 * counts (TEST_P) to sweep schedules.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/mutex.hpp"
#include "sync/waitgroup.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using rt::RunResult;
using support::kMillisecond;

// ------------------------------------------------ program fragments
// Each fragment is a self-contained completable concurrency idiom.

Go
producer(Channel<int>* ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await chan::send(ch, i);
    chan::close(ch);
    co_return;
}

Go
forwarder(Channel<int>* in, Channel<int>* out)
{
    while (true) {
        auto r = co_await chan::recv(in);
        if (!r.ok)
            break;
        co_await chan::send(out, r.value);
    }
    chan::close(out);
    co_return;
}

Go
consumer(Channel<int>* ch, sync::WaitGroup* wg)
{
    while (true) {
        auto r = co_await chan::recv(ch);
        if (!r.ok)
            break;
    }
    wg->done();
    co_return;
}

/** A pipeline: producer -> links forwarders -> consumer. */
rt::Task<void>
buildPipeline(Runtime* rt, sync::WaitGroup* wg, int links, int items,
              size_t cap)
{
    gc::Local<Channel<int>> first(makeChan<int>(*rt, cap));
    GOLF_GO(*rt, producer, first.get(), items);
    Channel<int>* prev = first.get();
    gc::Local<Channel<int>> keep;
    for (int i = 0; i < links; ++i) {
        auto* next = makeChan<int>(*rt, cap);
        keep = next;
        GOLF_GO(*rt, forwarder, prev, next);
        prev = next;
    }
    wg->add(1);
    GOLF_GO(*rt, consumer, prev, wg);
    co_return;
}

Go
lockWorker(sync::Mutex* mu, int* shared, sync::WaitGroup* wg)
{
    co_await mu->lock();
    ++*shared;
    co_await rt::yield();
    mu->unlock();
    wg->done();
    co_return;
}

/** Mutex contention: Listing 2's worker pool. */
rt::Task<void>
buildLockGroup(Runtime* rt, sync::WaitGroup* wg, int workers,
               int* shared)
{
    gc::Local<sync::Mutex> mu(rt->make<sync::Mutex>(*rt));
    for (int i = 0; i < workers; ++i) {
        wg->add(1);
        GOLF_GO(*rt, lockWorker, mu.get(), shared, wg);
    }
    co_return;
}

Go
selectConsumer(Channel<int>* a, Channel<int>* b, sync::WaitGroup* wg)
{
    bool aOpen = true, bOpen = true;
    while (aOpen || bOpen) {
        int v = 0;
        bool ok = false;
        // Go idiom: nil out closed channels so their case never fires.
        int idx = co_await chan::select(
            chan::recvCase(aOpen ? a : nullptr, &v, &ok),
            chan::recvCase(bOpen ? b : nullptr, &v, &ok));
        if (idx == 0 && !ok)
            aOpen = false;
        if (idx == 1 && !ok)
            bOpen = false;
    }
    wg->done();
    co_return;
}

/** Fan-in through a select over two producer channels. */
rt::Task<void>
buildSelectFanIn(Runtime* rt, sync::WaitGroup* wg, int items)
{
    gc::Local<Channel<int>> a(makeChan<int>(*rt, 1));
    gc::Local<Channel<int>> b(makeChan<int>(*rt, 0));
    GOLF_GO(*rt, producer, a.get(), items);
    GOLF_GO(*rt, producer, b.get(), items);
    wg->add(1);
    GOLF_GO(*rt, selectConsumer, a.get(), b.get(), wg);
    co_return;
}

Go
pingPong(Channel<int>* ping, Channel<int>* pong, int rounds,
         sync::WaitGroup* wg)
{
    for (int i = 0; i < rounds; ++i) {
        co_await chan::send(ping, i);
        co_await chan::recv(pong);
    }
    wg->done();
    co_return;
}

Go
pongPing(Channel<int>* ping, Channel<int>* pong, int rounds,
         sync::WaitGroup* wg)
{
    for (int i = 0; i < rounds; ++i) {
        co_await chan::recv(ping);
        co_await chan::send(pong, i);
    }
    wg->done();
    co_return;
}

/** Two goroutines in strict rendezvous lockstep. */
rt::Task<void>
buildPingPong(Runtime* rt, sync::WaitGroup* wg, int rounds)
{
    gc::Local<Channel<int>> ping(makeChan<int>(*rt, 0));
    gc::Local<Channel<int>> pong(makeChan<int>(*rt, 0));
    wg->add(2);
    GOLF_GO(*rt, pingPong, ping.get(), pong.get(), rounds, wg);
    GOLF_GO(*rt, pongPing, ping.get(), pong.get(), rounds, wg);
    co_return;
}

// ------------------------------------------------------ the program

struct ProgramParams
{
    uint64_t seed;
    int procs;
};

Go
randomProgram(Runtime* rtp, uint64_t seed, int* sharedCounter)
{
    support::Rng rng(seed);
    gc::Local<sync::WaitGroup> wg(rtp->make<sync::WaitGroup>(*rtp));
    int fragments = 3 + static_cast<int>(rng.nextBelow(5));
    for (int i = 0; i < fragments; ++i) {
        switch (rng.nextBelow(4)) {
          case 0:
            co_await buildPipeline(
                rtp, wg.get(), 1 + static_cast<int>(rng.nextBelow(4)),
                1 + static_cast<int>(rng.nextBelow(12)),
                rng.nextBelow(3));
            break;
          case 1:
            co_await buildLockGroup(
                rtp, wg.get(),
                2 + static_cast<int>(rng.nextBelow(6)), sharedCounter);
            break;
          case 2:
            co_await buildSelectFanIn(
                rtp, wg.get(),
                1 + static_cast<int>(rng.nextBelow(8)));
            break;
          default:
            co_await buildPingPong(
                rtp, wg.get(),
                1 + static_cast<int>(rng.nextBelow(6)));
            break;
        }
        if (rng.chance(0.3))
            co_await rt::gcNow();
    }
    co_await wg->wait();
    co_await rt::gcNow();
    co_return;
}

class SoundnessTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(SoundnessTest, CompletableProgramsAreNeverFlagged)
{
    auto [seedBase, procs] = GetParam();
    rt::Config cfg;
    cfg.procs = procs;
    cfg.seed = static_cast<uint64_t>(seedBase) * 7919 + 13;
    cfg.heap.minTriggerBytes = 512; // collect constantly
    Runtime rt(cfg);

    int shared = 0;
    RunResult r = rt.runMain(randomProgram, &rt, cfg.seed ^ 0xF00D,
                             &shared);

    // Soundness: the program completes and GOLF never cried wolf.
    EXPECT_TRUE(r.ok()) << "panic: " << r.panicMessage
                        << " globalDeadlock: " << r.globalDeadlock;
    EXPECT_EQ(rt.collector().reports().total(), 0u);
    EXPECT_GE(rt.collector().cycles(), 1u);
    // Everything the program allocated became unreachable and was
    // (or will be) collected: no goroutine is left behind.
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Waiting), 0u);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Deadlocked), 0u);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::PendingReclaim), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCores, SoundnessTest,
    ::testing::Combine(::testing::Range(1, 13),
                       ::testing::Values(1, 2, 4, 10)),
    [](const auto& info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
               "_procs" + std::to_string(std::get<1>(info.param));
    });

// A second property: reclaim mode on genuinely-deadlocked programs
// always reclaims everything and never touches live state.
class ReclaimPropertyTest : public ::testing::TestWithParam<int>
{};

Go
mixedProgram(Runtime* rtp, uint64_t seed)
{
    support::Rng rng(seed);
    // Live survivors channel, held by main throughout. Capacity
    // exceeds the sender count so a live send never blocks.
    gc::Local<Channel<int>> keep(makeChan<int>(*rtp, 16));
    int leaked = 0;
    for (int i = 0; i < 12; ++i) {
        if (rng.chance(0.5)) {
            // Leak: orphaned receiver on a dropped channel.
            GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                co_await chan::recv(c);
                co_return;
            }, makeChan<int>(*rtp, 0));
            ++leaked;
        } else {
            // Live: sender into the kept buffered channel.
            GOLF_GO(*rtp, +[](Channel<int>* c, int v) -> Go {
                co_await chan::send(c, v);
                co_return;
            }, keep.get(), i);
        }
    }
    co_await rt::sleepFor(2 * kMillisecond);
    co_await rt::gcNow(); // detect
    co_await rt::gcNow(); // reclaim
    EXPECT_EQ(rtp->collector().reports().total(),
              static_cast<size_t>(leaked));
    EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u);
    // Drain the live senders' values: all must have arrived.
    co_return;
}

TEST_P(ReclaimPropertyTest, ReclaimsExactlyTheLeaks)
{
    rt::Config cfg;
    cfg.seed = static_cast<uint64_t>(GetParam());
    cfg.procs = 1 + GetParam() % 4;
    Runtime rt(cfg);
    RunResult r = rt.runMain(mixedProgram, &rt, cfg.seed * 31 + 7);
    EXPECT_TRUE(r.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReclaimPropertyTest,
                         ::testing::Range(1, 17));

} // namespace
} // namespace golf
