/**
 * @file
 * Unit tests for the support layer: intrusive list, treap, RNG,
 * virtual clock, statistics, masked pointers.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/intrusive_list.hpp"
#include "support/masked_ptr.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/treap.hpp"
#include "support/vclock.hpp"

namespace golf::support {
namespace {

// ---------------------------------------------------------------- IList

struct Node
{
    explicit Node(int v) : value(v) {}
    int value;
    IListNode link;
};

using NodeList = IList<Node, &Node::link>;

TEST(IListTest, StartsEmpty)
{
    NodeList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.popFront(), nullptr);
    EXPECT_EQ(list.front(), nullptr);
}

TEST(IListTest, PushBackPopFrontIsFifo)
{
    NodeList list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.popFront()->value, 1);
    EXPECT_EQ(list.popFront()->value, 2);
    EXPECT_EQ(list.popFront()->value, 3);
    EXPECT_TRUE(list.empty());
}

TEST(IListTest, PushFront)
{
    NodeList list;
    Node a(1), b(2);
    list.pushBack(&a);
    list.pushFront(&b);
    EXPECT_EQ(list.popFront()->value, 2);
    EXPECT_EQ(list.popFront()->value, 1);
}

TEST(IListTest, UnlinkFromMiddle)
{
    NodeList list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    b.link.unlink();
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.popFront()->value, 1);
    EXPECT_EQ(list.popFront()->value, 3);
}

TEST(IListTest, NodeDestructorUnlinks)
{
    NodeList list;
    Node a(1);
    {
        Node b(2);
        list.pushBack(&a);
        list.pushBack(&b);
        EXPECT_EQ(list.size(), 2u);
    }
    EXPECT_EQ(list.size(), 1u);
    EXPECT_EQ(list.front()->value, 1);
}

TEST(IListTest, ForEachVisitsInOrder)
{
    NodeList list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    std::vector<int> seen;
    list.forEach([&](Node* n) { seen.push_back(n->value); });
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(IListTest, LinkedFlagTracksMembership)
{
    NodeList list;
    Node a(1);
    EXPECT_FALSE(a.link.linked());
    list.pushBack(&a);
    EXPECT_TRUE(a.link.linked());
    list.popFront();
    EXPECT_FALSE(a.link.linked());
}

// ---------------------------------------------------------------- Treap

TEST(TreapTest, InsertFindErase)
{
    Treap<int> t;
    EXPECT_TRUE(t.empty());
    t.obtain(10) = 100;
    t.obtain(20) = 200;
    t.obtain(5) = 50;
    EXPECT_EQ(t.size(), 3u);
    ASSERT_NE(t.find(10), nullptr);
    EXPECT_EQ(*t.find(10), 100);
    EXPECT_EQ(*t.find(5), 50);
    EXPECT_EQ(t.find(7), nullptr);
    EXPECT_TRUE(t.erase(10));
    EXPECT_FALSE(t.erase(10));
    EXPECT_EQ(t.find(10), nullptr);
    EXPECT_EQ(t.size(), 2u);
}

TEST(TreapTest, ObtainIsIdempotent)
{
    Treap<int> t;
    t.obtain(1) = 11;
    t.obtain(1) = 12;
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(*t.find(1), 12);
}

TEST(TreapTest, InvariantsHoldUnderRandomWorkload)
{
    Treap<int> t(42);
    Rng rng(7);
    std::set<uintptr_t> keys;
    for (int i = 0; i < 2000; ++i) {
        uintptr_t k = rng.nextBelow(500) + 1;
        if (rng.chance(0.6)) {
            t.obtain(k) = static_cast<int>(k);
            keys.insert(k);
        } else {
            t.erase(k);
            keys.erase(k);
        }
        if (i % 97 == 0) {
            ASSERT_TRUE(t.checkInvariants()) << "at step " << i;
        }
    }
    EXPECT_EQ(t.size(), keys.size());
    EXPECT_TRUE(t.checkInvariants());
    for (uintptr_t k : keys)
        EXPECT_NE(t.find(k), nullptr) << "key " << k;
}

TEST(TreapTest, ForEachIsInKeyOrder)
{
    Treap<int> t;
    for (uintptr_t k : {50u, 10u, 30u, 20u, 40u})
        t.obtain(k) = static_cast<int>(k);
    std::vector<uintptr_t> seen;
    t.forEach([&](uintptr_t k, int&) { seen.push_back(k); });
    EXPECT_EQ(seen, (std::vector<uintptr_t>{10, 20, 30, 40, 50}));
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(10);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ExpMeanApproximatelyCorrect)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExp(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.3);
}

TEST(RngTest, ShufflePermutes)
{
    Rng rng(14);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

// --------------------------------------------------------------- VClock

TEST(VClockTest, StartsAtZero)
{
    VClock c;
    EXPECT_EQ(c.now(), 0);
    EXPECT_FALSE(c.hasPending());
    EXPECT_EQ(c.nextDeadline(), VClock::kNoDeadline);
}

TEST(VClockTest, AdvanceMovesNow)
{
    VClock c;
    c.advance(100);
    EXPECT_EQ(c.now(), 100);
}

TEST(VClockTest, FireNextAdvancesToDeadline)
{
    VClock c;
    int fired = 0;
    c.schedule(500, [&] { ++fired; });
    EXPECT_TRUE(c.hasPending());
    EXPECT_EQ(c.fireNext(), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(c.now(), 500);
    EXPECT_FALSE(c.hasPending());
}

TEST(VClockTest, FiresInDeadlineOrder)
{
    VClock c;
    std::vector<int> order;
    c.schedule(300, [&] { order.push_back(3); });
    c.schedule(100, [&] { order.push_back(1); });
    c.schedule(200, [&] { order.push_back(2); });
    while (c.hasPending())
        c.fireNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(VClockTest, SameDeadlineFifoByScheduleOrder)
{
    VClock c;
    std::vector<int> order;
    c.schedule(100, [&] { order.push_back(1); });
    c.schedule(100, [&] { order.push_back(2); });
    c.fireNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(VClockTest, CancelPreventsFiring)
{
    VClock c;
    int fired = 0;
    TimerId id = c.schedule(100, [&] { ++fired; });
    c.schedule(200, [&] { ++fired; });
    EXPECT_TRUE(c.cancel(id));
    while (c.hasPending())
        c.fireNext();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(c.now(), 200);
}

TEST(VClockTest, FirePendingRunsAllDue)
{
    VClock c;
    int fired = 0;
    c.schedule(50, [&] { ++fired; });
    c.schedule(60, [&] { ++fired; });
    c.schedule(500, [&] { ++fired; });
    c.advance(100);
    EXPECT_EQ(c.firePending(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(c.hasPending());
}

TEST(VClockTest, TimerMayScheduleAnotherTimer)
{
    VClock c;
    int fired = 0;
    c.schedule(10, [&] {
        ++fired;
        c.scheduleAfter(10, [&] { ++fired; });
    });
    c.fireNext();
    EXPECT_EQ(fired, 1);
    c.fireNext();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(c.now(), 20);
}

// --------------------------------------------------------------- Stats

TEST(StatsTest, EmptySamples)
{
    Samples s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.mean(), 0);
    EXPECT_EQ(s.percentile(50), 0);
}

TEST(StatsTest, MeanMinMax)
{
    Samples s;
    for (double v : {4.0, 1.0, 3.0, 2.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(StatsTest, PercentileInterpolates)
{
    Samples s;
    for (double v : {10.0, 20.0, 30.0, 40.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
    EXPECT_DOUBLE_EQ(s.median(), 25.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(StatsTest, PercentileAfterLateAdd)
{
    Samples s;
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0); // re-sorts after growth
}

TEST(StatsTest, StddevOfConstantIsZero)
{
    Samples s;
    for (int i = 0; i < 5; ++i)
        s.add(7.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, BoxStats)
{
    Samples s;
    for (int i = 1; i <= 9; ++i)
        s.add(static_cast<double>(i));
    BoxStats b = BoxStats::of(s);
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.median, 5.0);
    EXPECT_DOUBLE_EQ(b.max, 9.0);
    EXPECT_DOUBLE_EQ(b.q1, 3.0);
    EXPECT_DOUBLE_EQ(b.q3, 7.0);
}

TEST(StatsTest, NormalizedAuc)
{
    EXPECT_DOUBLE_EQ(normalizedAuc({1.0, 1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(normalizedAuc({1.0, 0.0}), 0.5);
    EXPECT_DOUBLE_EQ(normalizedAuc({}), 0.0);
}

// ---------------------------------------------------------- MaskedPtr

TEST(MaskedPtrTest, RoundTrip)
{
    int x = 5;
    MaskedPtr<int> p(&x);
    EXPECT_EQ(p.get(), &x);
    EXPECT_TRUE(static_cast<bool>(p));
}

TEST(MaskedPtrTest, NullStaysNull)
{
    MaskedPtr<int> p;
    EXPECT_EQ(p.get(), nullptr);
    EXPECT_FALSE(static_cast<bool>(p));
    EXPECT_EQ(p.raw(), 0u);
}

TEST(MaskedPtrTest, StoredWordHasHighBitFlipped)
{
    int x = 5;
    MaskedPtr<int> p(&x);
    // The raw stored word must not be a valid user-space address.
    EXPECT_TRUE(isMaskedAddress(p.raw()));
    EXPECT_NE(p.raw(), reinterpret_cast<uintptr_t>(&x));
}

TEST(MaskedPtrTest, MaskIsInvolution)
{
    uintptr_t addr = 0x7f00deadbeefull;
    EXPECT_EQ(maskAddress(maskAddress(addr)), addr);
}

} // namespace
} // namespace golf::support
