/**
 * @file
 * Tests for the eager-liveness extension (the Section 5.3
 * optimization): identical detection results to the reference
 * fixpoint algorithm, but with the daisy chain discovered in a
 * single mark iteration and near-zero per-round pair checks.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

Go
chainLink(Channel<int>* in, Channel<int>* out)
{
    int v = (co_await chan::recv(in)).value;
    co_await chan::send(out, v);
    co_return;
}

Go
daisyChainProgram(Runtime* rtp, int n)
{
    gc::Local<Channel<int>> head(makeChan<int>(*rtp, 0));
    Channel<int>* prev = head.get();
    for (int i = 0; i < n; ++i) {
        auto* next = makeChan<int>(*rtp, 0);
        GOLF_GO(*rtp, chainLink, prev, next);
        prev = next;
    }
    co_await rt::sleepFor(kMillisecond);
    co_await rt::gcNow();
    co_await chan::send(head.get(), 1);
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

TEST(EagerLivenessTest, DaisyChainCollapsesToOneIteration)
{
    constexpr int kChain = 10;

    rt::Config lazy;
    lazy.eagerLivenessMarking = false;
    Runtime lazyRt(lazy);
    lazyRt.runMain(daisyChainProgram, &lazyRt, kChain);

    rt::Config eager;
    eager.eagerLivenessMarking = true;
    Runtime eagerRt(eager);
    eagerRt.runMain(daisyChainProgram, &eagerRt, kChain);

    const auto& lazyCs = lazyRt.collector().history()[0];
    const auto& eagerCs = eagerRt.collector().history()[0];

    // Same verdicts (nothing deadlocked), same marking work.
    EXPECT_EQ(lazyRt.collector().reports().total(), 0u);
    EXPECT_EQ(eagerRt.collector().reports().total(), 0u);
    EXPECT_EQ(lazyCs.objectsMarked, eagerCs.objectsMarked);

    // The reference algorithm needs one round per chain link; the
    // eager extension discovers everything inside the first drain.
    EXPECT_GE(lazyCs.markIterations, static_cast<uint64_t>(kChain));
    EXPECT_LE(eagerCs.markIterations, 2u);
    EXPECT_LT(eagerCs.detectChecks, lazyCs.detectChecks);
}

Go
mixedProgram(Runtime* rtp)
{
    // Live: parked on a held channel. Dead: parked on dropped ones.
    gc::Local<Channel<int>> keep(makeChan<int>(*rtp, 0));
    for (int i = 0; i < 3; ++i) {
        GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
            co_await chan::recv(c);
            co_return;
        }, keep.get());
    }
    for (int i = 0; i < 4; ++i) {
        GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
            co_await chan::recv(c);
            co_return;
        }, makeChan<int>(*rtp, 0));
    }
    co_await rt::sleepFor(kMillisecond);
    co_await rt::gcNow();
    for (int i = 0; i < 3; ++i)
        co_await chan::send(keep.get(), i);
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

TEST(EagerLivenessTest, SameDetectionsAsReferenceAlgorithm)
{
    rt::Config lazy;
    Runtime lazyRt(lazy);
    lazyRt.runMain(mixedProgram, &lazyRt);

    rt::Config eager;
    eager.eagerLivenessMarking = true;
    Runtime eagerRt(eager);
    eagerRt.runMain(mixedProgram, &eagerRt);

    EXPECT_EQ(lazyRt.collector().reports().total(), 4u);
    EXPECT_EQ(eagerRt.collector().reports().total(), 4u);
    EXPECT_EQ(lazyRt.collector().reports().dedupCounts(),
              eagerRt.collector().reports().dedupCounts());
}

TEST(EagerLivenessTest, RecoveryStillWorks)
{
    rt::Config cfg;
    cfg.eagerLivenessMarking = true;
    Runtime rt(cfg);
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
            co_await chan::recv(c);
            co_return;
        }, makeChan<int>(*rtp, 0));
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_await rt::gcNow();
        EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u);
        EXPECT_EQ(rtp->heap().liveObjects(), 0u);
        co_return;
    }, &rt);
    EXPECT_EQ(rt.collector().reports().total(), 1u);
}

TEST(EagerLivenessTest, FalseNegativesUnchanged)
{
    // The optimization must not make the analysis *more* complete:
    // a globally reachable channel still hides its deadlock.
    rt::Config cfg;
    cfg.eagerLivenessMarking = true;
    Runtime rt(cfg);
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::GlobalRoot<Channel<int>> ch(rtp->heap(),
                                        makeChan<int>(*rtp, 0));
        GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
            co_await chan::send(c, 1);
            co_return;
        }, ch.get());
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        co_return;
    }, &rt);
    EXPECT_EQ(rt.collector().reports().total(), 0u);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Waiting), 1u);
}

} // namespace
} // namespace golf
