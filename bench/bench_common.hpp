/**
 * @file
 * Shared helpers for the experiment binaries: environment-variable
 * knobs (so CI can run reduced sweeps) and CSV emission next to the
 * human-readable tables.
 */
#ifndef GOLFCC_BENCH_COMMON_HPP
#define GOLFCC_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace golf::bench {

/** Integer knob from the environment with a default. */
inline int
envInt(const char* name, int def)
{
    const char* v = std::getenv(name);
    if (!v || !*v)
        return def;
    return std::atoi(v);
}

/** Where CSV artifacts go (default: current directory). */
inline std::string
csvPath(const std::string& filename)
{
    const char* dir = std::getenv("GOLF_RESULTS_DIR");
    std::string base = dir && *dir ? dir : ".";
    return base + "/" + filename;
}

} // namespace golf::bench

#endif // GOLFCC_BENCH_COMMON_HPP
