/**
 * @file
 * Regenerates Figure 1: blocked goroutines over time for a leaky
 * production service under the ordinary Go runtime. Weekday-morning
 * redeployments reset the count; over weekends (and any stretch
 * without a deploy) the leak accumulates and the count spikes.
 *
 * Expected shape: a sawtooth whose teeth are daily on weekdays and
 * whose weekend segments climb roughly 3x higher.
 *
 * Knobs: GOLF_DAYS (default 21), GOLF_SEED, GOLF_RESULTS_DIR.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "service/workload.hpp"

int
main()
{
    namespace bench = golf::bench;
    const int days = bench::envInt("GOLF_DAYS", 21);
    const auto seed =
        static_cast<uint64_t>(bench::envInt("GOLF_SEED", 11));

    std::printf("Figure 1: blocked goroutines over %d days "
                "(weekday redeploys, leaky service, ordinary GC)\n\n",
                days);

    golf::service::TimeSeries series =
        golf::service::runFigure1Deployment(seed, days, 0.08);

    // Weekday vs weekend peaks. Deployments roll at 09:00, so a
    // sample belongs to the deployment day containing (t - 9h); the
    // Friday deployment owns the whole weekend until Monday 09:00.
    double weekdayPeak = 0, weekendPeak = 0;
    for (const auto& p : series.points) {
        auto shifted = p.t - 9 * golf::support::kHour;
        if (shifted < 0)
            shifted = 0;
        int day =
            static_cast<int>(shifted / (24 * golf::support::kHour));
        bool weekend = day % 7 >= 4; // Fri deployment spans Sat+Sun
        double& peak = weekend ? weekendPeak : weekdayPeak;
        if (p.value > peak)
            peak = p.value;
    }

    std::printf("blocked goroutines (hourly samples, peak=%.0f):\n",
                series.maxValue());
    std::printf("[%s]\n\n", series.sparkline(100).c_str());
    std::printf("weekday peak: %8.0f blocked goroutines\n",
                weekdayPeak);
    std::printf("weekend peak: %8.0f blocked goroutines "
                "(%.1fx weekday)\n",
                weekendPeak,
                weekdayPeak > 0 ? weekendPeak / weekdayPeak : 0.0);

    series.writeCsv(bench::csvPath("fig1.csv"));
    std::printf("\nCSV written to %s\n",
                bench::csvPath("fig1.csv").c_str());
    return 0;
}
