/**
 * @file
 * Regenerates Table 2: performance impact of GOLF on a service under
 * controlled testing. Four runs — Baseline and GOLF, at 0% and 10%
 * child-goroutine leak rates — reporting client throughput/latency
 * and server MemStats/GC metrics, with the B/G ratio columns.
 *
 * Expected shape (paper): at 0% leak, parity except GC pauses (GOLF
 * ~2.5x worse pause-per-cycle). At 10% leak, GOLF wins ~9% on
 * throughput, ~1.5x on tail latency, and dozens of x on
 * HeapAlloc/HeapObjects; the baseline runs fewer GC cycles because
 * its ballooning live heap stretches the pacing trigger.
 *
 * Knobs: GOLF_DURATION_S (default 30), GOLF_CONNS (32),
 * GOLF_MAP_ENTRIES (100000), GOLF_SEED.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "service/service.hpp"

namespace {

using golf::service::ControlledResult;
using golf::service::ServiceConfig;

void
printRatioRow(const char* name, double base, double gol,
              bool higherIsBetter)
{
    double ratio = gol == 0 ? 0 : base / gol;
    std::printf("  %-38s %14.4g %14.4g %8.2f%s\n", name, base, gol,
                ratio,
                higherIsBetter ? (base > gol ? "  (B)" : "  (G)")
                               : (base < gol ? "  (B)" : "  (G)"));
}

void
printPair(const char* title, const ControlledResult& base,
          const ControlledResult& gol)
{
    std::printf("\n=== %s ===\n", title);
    std::printf("  %-38s %14s %14s %8s\n", "Metric", "Base (B)",
                "GOLF (G)", "B/G");
    std::printf("  -- client --\n");
    printRatioRow("Throughput (req./s)", base.throughputRps,
                  gol.throughputRps, true);
    printRatioRow("P50 latency (ms)", base.latency.p50,
                  gol.latency.p50, false);
    printRatioRow("P90 latency (ms)", base.latency.p90,
                  gol.latency.p90, false);
    printRatioRow("P95 latency (ms)", base.latency.p95,
                  gol.latency.p95, false);
    printRatioRow("P99 latency (ms)", base.latency.p99,
                  gol.latency.p99, false);
    printRatioRow("P99.9 latency (ms)", base.latency.p999,
                  gol.latency.p999, false);
    printRatioRow("P99.995 latency (ms)", base.latency.p99995,
                  gol.latency.p99995, false);
    printRatioRow("Maximum latency (ms)", base.latency.max,
                  gol.latency.max, false);
    std::printf("  -- server --\n");
    printRatioRow("Stack spans (MB) (StackInuse)",
                  static_cast<double>(base.stackInuse) / 1e6,
                  static_cast<double>(gol.stackInuse) / 1e6, false);
    printRatioRow("Heap alloc (MB) (HeapAlloc)",
                  static_cast<double>(base.heapAlloc) / 1e6,
                  static_cast<double>(gol.heapAlloc) / 1e6, false);
    printRatioRow("Heap in use (MB) (HeapInuse)",
                  static_cast<double>(base.heapInuse) / 1e6,
                  static_cast<double>(gol.heapInuse) / 1e6, false);
    printRatioRow("No. of objects (HeapObjects)",
                  static_cast<double>(base.heapObjects),
                  static_cast<double>(gol.heapObjects), false);
    printRatioRow("GC CPU fraction (GCCPUFraction)",
                  base.gcCpuFraction, gol.gcCpuFraction, false);
    printRatioRow("GC pause time (ns) (PauseTotalNs)",
                  static_cast<double>(base.pauseTotalNs),
                  static_cast<double>(gol.pauseTotalNs), false);
    printRatioRow("No. of GC cycles (NumGC)",
                  static_cast<double>(base.numGC),
                  static_cast<double>(gol.numGC), false);
    printRatioRow("Pause per cycle (ns)", base.pausePerCycleNs,
                  gol.pausePerCycleNs, false);
    std::printf("  deadlocks detected: base=%zu golf=%zu "
                "(requests: %zu / %zu)\n",
                base.deadlocksDetected, gol.deadlocksDetected,
                base.requestsServed, gol.requestsServed);
}

ControlledResult
run(double leakRate, golf::rt::GcMode mode, const ServiceConfig& proto)
{
    ServiceConfig cfg = proto;
    cfg.leakRate = leakRate;
    cfg.gcMode = mode;
    return golf::service::runControlledService(cfg);
}

} // namespace

int
main()
{
    namespace bench = golf::bench;
    ServiceConfig proto;
    proto.duration =
        bench::envInt("GOLF_DURATION_S", 30) * golf::support::kSecond;
    proto.connections = bench::envInt("GOLF_CONNS", 32);
    proto.mapEntries =
        static_cast<size_t>(bench::envInt("GOLF_MAP_ENTRIES", 100000));
    proto.seed = static_cast<uint64_t>(bench::envInt("GOLF_SEED", 7));

    std::printf("Table 2: GOLF vs Baseline on the controlled "
                "service (%d conns, %llds + 5s warmup)\n",
                proto.connections,
                static_cast<long long>(proto.duration /
                                       golf::support::kSecond));

    auto base0 = run(0.0, golf::rt::GcMode::Baseline, proto);
    auto golf0 = run(0.0, golf::rt::GcMode::Golf, proto);
    printPair("Leaks in 0% of requests", base0, golf0);

    auto base10 = run(0.10, golf::rt::GcMode::Baseline, proto);
    auto golf10 = run(0.10, golf::rt::GcMode::Golf, proto);
    printPair("Leaks in 10% of requests", base10, golf10);

    std::ofstream csv(bench::csvPath("table2.csv"));
    csv << "scenario,mode,throughput_rps,p50_ms,p90_ms,p95_ms,p99_ms,"
           "p999_ms,p99995_ms,max_ms,stack_bytes,heap_alloc,"
           "heap_objects,gc_cpu_fraction,pause_total_ns,num_gc,"
           "deadlocks\n";
    auto emit = [&](const char* sc, const char* mode,
                    const ControlledResult& r) {
        csv << sc << "," << mode << "," << r.throughputRps << ","
            << r.latency.p50 << "," << r.latency.p90 << ","
            << r.latency.p95 << "," << r.latency.p99 << ","
            << r.latency.p999 << "," << r.latency.p99995 << ","
            << r.latency.max << "," << r.stackInuse << ","
            << r.heapAlloc << "," << r.heapObjects << ","
            << r.gcCpuFraction << "," << r.pauseTotalNs << ","
            << r.numGC << "," << r.deadlocksDetected << "\n";
    };
    emit("leak0", "baseline", base0);
    emit("leak0", "golf", golf0);
    emit("leak10", "baseline", base10);
    emit("leak10", "golf", golf10);
    std::printf("\nCSV written to %s\n",
                bench::csvPath("table2.csv").c_str());
    return 0;
}
