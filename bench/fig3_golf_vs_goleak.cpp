/**
 * @file
 * Regenerates Figure 3 (RQ1(b)): the ratio of individual
 * partial-deadlock reports between GOLF (monitor mode) and GOLEAK,
 * per deduplicated GOLF report, over a synthetic monorepo test-suite
 * corpus (DESIGN.md substitution 3; paper: 3 111 packages, 357
 * deduplicated GOLEAK reports, 180 GOLF reports).
 *
 * Expected shape: GOLF sees ~50% of GOLEAK's deduplicated reports
 * and ~60% of its individual reports; of the reports GOLF does see,
 * ~55% match GOLEAK instance-for-instance, and the area under the
 * sorted ratio curve is ~82%.
 *
 * Knobs: GOLF_PACKAGES (default 3111), GOLF_SEED.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "service/corpus.hpp"
#include "support/stats.hpp"

int
main()
{
    namespace bench = golf::bench;
    golf::service::CorpusConfig cfg;
    cfg.packages = bench::envInt("GOLF_PACKAGES", 3111);
    cfg.seed = static_cast<uint64_t>(bench::envInt("GOLF_SEED", 3));

    std::printf("Figure 3 / RQ1(b): GOLF vs GOLEAK over %d package "
                "test suites\n\n",
                cfg.packages);

    golf::service::CorpusResult r = golf::service::runCorpus(cfg);

    std::printf("GOLEAK: %zu individual reports, %zu deduplicated\n",
                r.goleakTotal, r.goleakDedup());
    std::printf("GOLF:   %zu individual reports (%.0f%%), "
                "%zu deduplicated (%.0f%% of GOLEAK's)\n",
                r.golfTotal,
                100.0 * static_cast<double>(r.golfTotal) /
                    static_cast<double>(r.goleakTotal),
                r.golfDedup(),
                100.0 * static_cast<double>(r.golfDedup()) /
                    static_cast<double>(r.goleakDedup()));

    std::vector<double> curve = r.ratioCurve();
    size_t full = 0;
    for (double v : curve)
        full += v >= 0.999 ? 1 : 0;
    double auc = golf::support::normalizedAuc(curve);

    std::printf("\nper-dedup-report GOLF/GOLEAK ratio curve "
                "(%zu reports):\n", curve.size());
    // Downsampled decile view of the curve.
    std::printf("  x (report #):");
    for (int d = 0; d <= 10; ++d) {
        size_t idx = curve.empty()
            ? 0 : std::min(curve.size() - 1, d * curve.size() / 10);
        std::printf(" %5zu", idx + 1);
    }
    std::printf("\n  ratio (%%):  ");
    for (int d = 0; d <= 10; ++d) {
        size_t idx = curve.empty()
            ? 0 : std::min(curve.size() - 1, d * curve.size() / 10);
        std::printf(" %5.0f", curve.empty() ? 0 : 100 * curve[idx]);
    }
    std::printf("\n\n");

    std::printf("reports where GOLF found every GOLEAK instance: "
                "%zu (%.0f%%)\n",
                full,
                curve.empty()
                    ? 0
                    : 100.0 * static_cast<double>(full) /
                          static_cast<double>(curve.size()));
    std::printf("area under the ratio curve: %.0f%%\n", 100 * auc);

    std::ofstream csv(bench::csvPath("fig3.csv"));
    csv << "report_index,golf_to_goleak_ratio\n";
    for (size_t i = 0; i < curve.size(); ++i)
        csv << i + 1 << "," << curve[i] << "\n";
    std::printf("\nCSV written to %s\n",
                bench::csvPath("fig3.csv").c_str());
    return 0;
}
