/**
 * @file
 * Parallel-marking throughput sweep: objects/second through the
 * gc::ParallelMarker pool at 1, 2, 4 and 8 workers over one wide
 * seeded object graph, emitted as BENCH_gc_parallel.json.
 *
 * The sweep doubles as a correctness smoke: every worker count must
 * mark exactly the same number of objects, bytes and pointer edges
 * as the serial marker (the differential contract of DESIGN.md
 * Section 8), and the run exits non-zero on any mismatch — which is
 * how the `bench_gc_parallel_smoke` ctest wires it into tier-1.
 *
 * Speedup expectations are hardware-bound: the pool cannot beat the
 * serial marker on a single-core host (the JSON records
 * hardware_concurrency precisely so readers can judge the speedup
 * numbers in context). On a >= 4-core host, workers=4 is expected to
 * reach >= 2.5x the serial throughput.
 *
 * Usage:
 *   gc_mark_parallel [--smoke]
 * Environment:
 *   GOLF_PAR_NODES    graph size        (default 1000000; smoke 60000)
 *   GOLF_PAR_REPS     timed reps/count  (default 5; smoke 3)
 *   GOLF_RESULTS_DIR  where the JSON goes (default .)
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "gc/heap.hpp"
#include "gc/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace golf;

/** A wide graph node: ~4 outgoing edges gives the stealing pool
 *  plenty of width (unlike the daisy-chain worst case). */
struct Node final : gc::Object
{
    std::vector<Node*> out;

    void
    trace(gc::Marker& m) override
    {
        for (Node* n : out)
            m.mark(n);
    }

    void
    prefetchTrace() const override
    {
#if defined(__GNUC__) || defined(__clang__)
        if (!out.empty())
            __builtin_prefetch(out.data(), 0);
#endif
    }

    void
    prefetchTraceTargets() const override
    {
        for (Node* n : out)
            gc::prefetchMarkWord(n);
    }

    const char* objectName() const override { return "bench-node"; }
};

struct Sample
{
    int workers = 0;
    uint64_t bestNs = 0;
    uint64_t objectsMarked = 0;
    uint64_t bytesMarked = 0;
    uint64_t pointersTraversed = 0;
    uint64_t parallelJobs = 0;
    double objectsPerSec = 0.0;
};

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    const size_t nodes = static_cast<size_t>(
        bench::envInt("GOLF_PAR_NODES", smoke ? 60000 : 1000000));
    const int reps = bench::envInt("GOLF_PAR_REPS", smoke ? 3 : 5);

    // One heap, one graph; each measured cycle re-whitens everything
    // by bumping the epoch, so the same graph is marked repeatedly.
    gc::Heap heap;
    support::Rng rng(20260805);
    std::vector<Node*> graph;
    graph.reserve(nodes);
    for (size_t i = 0; i < nodes; ++i)
        graph.push_back(heap.make<Node>());
    uint64_t edges = 0;
    for (size_t i = 0; i < nodes; ++i) {
        const size_t degree = 2 + rng.nextBelow(5); // mean 4
        for (size_t e = 0; e < degree; ++e)
            graph[i]->out.push_back(graph[rng.nextBelow(nodes)]);
        edges += degree;
    }
    // Roots: a thin sample; everything else is reached by tracing.
    std::vector<Node*> roots;
    for (size_t r = 0; r < 1 + nodes / 1000; ++r)
        roots.push_back(graph[rng.nextBelow(nodes)]);

    std::vector<Sample> samples;
    bool ok = true;
    for (int workers : {1, 2, 4, 8}) {
        Sample s;
        s.workers = workers;
        for (int rep = 0; rep < reps; ++rep) {
            gc::ParallelMarker& pool = heap.beginCycleParallel(workers);
            gc::Marker& m = pool.coordinator();
            const uint64_t t0 = nowNs();
            for (Node* r : roots)
                m.mark(r);
            m.drain();
            const uint64_t dt = nowNs() - t0;
            if (rep == 0 || dt < s.bestNs)
                s.bestNs = dt;
            s.objectsMarked = m.objectsMarked();
            s.bytesMarked = m.bytesMarked();
            s.pointersTraversed = m.pointersTraversed();
            s.parallelJobs = pool.parallelJobsThisCycle();
        }
        s.objectsPerSec = s.bestNs == 0
            ? 0.0
            : static_cast<double>(s.objectsMarked) * 1e9 /
              static_cast<double>(s.bestNs);
        samples.push_back(s);

        // Differential check against the workers=1 row.
        const Sample& base = samples.front();
        if (s.objectsMarked != base.objectsMarked ||
            s.bytesMarked != base.bytesMarked ||
            s.pointersTraversed != base.pointersTraversed) {
            std::fprintf(stderr,
                         "MISMATCH at workers=%d: marked %llu/%llu "
                         "bytes %llu/%llu edges %llu/%llu\n",
                         workers,
                         static_cast<unsigned long long>(
                             s.objectsMarked),
                         static_cast<unsigned long long>(
                             base.objectsMarked),
                         static_cast<unsigned long long>(s.bytesMarked),
                         static_cast<unsigned long long>(
                             base.bytesMarked),
                         static_cast<unsigned long long>(
                             s.pointersTraversed),
                         static_cast<unsigned long long>(
                             base.pointersTraversed));
            ok = false;
        }
    }

    const double baseRate = samples.front().objectsPerSec;
    const unsigned hw = std::thread::hardware_concurrency();

    // Scaling gate: the ROADMAP target is >= 2.5x at 4 workers, but
    // that is only a meaningful assertion when the host actually has
    // 4 cores — on the 1-CPU CI runner the "parallel" pool time-slices
    // one core and any threshold would be noise. Record the skip
    // explicitly instead of silently passing.
    const bool scalingGateApplies = hw >= 4;
    double speedup4 = 0.0;
    for (const Sample& s : samples) {
        if (s.workers == 4 && baseRate != 0.0)
            speedup4 = s.objectsPerSec / baseRate;
    }
    bool scalingOk = true;
    if (scalingGateApplies && speedup4 < 2.5) {
        std::fprintf(stderr,
                     "SCALING GATE FAILED: %.2fx at 4 workers "
                     "(target >= 2.5x, hw_concurrency=%u)\n",
                     speedup4, hw);
        scalingOk = false;
    }

    std::printf("gc_mark_parallel: %zu nodes, %llu edges, %d reps, "
                "hw_concurrency=%u%s\n",
                nodes, static_cast<unsigned long long>(edges), reps, hw,
                smoke ? " (smoke)" : "");
    for (const Sample& s : samples) {
        std::printf(
            "  workers=%d  best=%8.3f ms  %12.0f objects/s  "
            "speedup=%.2fx  jobs=%llu\n",
            s.workers, static_cast<double>(s.bestNs) / 1e6,
            s.objectsPerSec,
            baseRate == 0.0 ? 0.0 : s.objectsPerSec / baseRate,
            static_cast<unsigned long long>(s.parallelJobs));
    }

    const std::string path =
        bench::csvPath("BENCH_gc_parallel.json");
    std::ofstream js(path);
    js << "{\n"
       << "  \"bench\": \"gc_mark_parallel\",\n"
       << "  \"nodes\": " << nodes << ",\n"
       << "  \"edges\": " << edges << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"results\": [\n";
    for (size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        js << "    {\"workers\": " << s.workers
           << ", \"best_ns\": " << s.bestNs
           << ", \"objects_marked\": " << s.objectsMarked
           << ", \"pointers_traversed\": " << s.pointersTraversed
           << ", \"objects_per_sec\": "
           << static_cast<uint64_t>(s.objectsPerSec)
           << ", \"speedup_vs_serial\": "
           << (baseRate == 0.0 ? 0.0 : s.objectsPerSec / baseRate)
           << ", \"parallel_jobs\": " << s.parallelJobs << "}"
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"differential_ok\": " << (ok ? "true" : "false") << ",\n"
       << "  \"skipped_scaling_gate\": "
       << (scalingGateApplies ? "false" : "true") << ",\n"
       << "  \"scaling_ok\": " << (scalingOk ? "true" : "false") << "\n"
       << "}\n";
    js.close();
    std::printf("wrote %s\n", path.c_str());

    return ok && scalingOk ? 0 : 1;
}
