/**
 * @file
 * Goodput across the recovery ladder under a 10% leak rate, emitted
 * as BENCH_service_guard.json.
 *
 * The experiment: the guarded service (src/service/guard_service.*)
 * runs once leak-free at the Detect rung — the baseline nothing can
 * beat — then at leakRate=0.10 on every rung of the ladder. On the
 * Detect rung the leaked children and their 100K-entry maps pile up
 * for the whole run; Cancel delivers DeadlockErrors that the children
 * recover, freeing their closures; Reclaim unwinds them from the
 * collector; Quarantine escalates cancel -> reclaim. The JSON records
 * goodput (OK requests after warmup per second) per rung plus the
 * ratio against the leak-free baseline.
 *
 * Acceptance (wired into `bench_service_guard_smoke`): the Cancel
 * rung must sustain >= 90% of leak-free goodput, and every rung must
 * report zero resurrections and a clean run. Deterministic per seed.
 *
 * Usage:
 *   service_guard [--smoke] [-metrics <path>] [-prom <path>]
 *                 [-gctrace] [-flight <records>] [-blockprofile <ns>]
 *                 [-mutexprofile <ns>] [-no-obs]
 *
 * -metrics / -prom write the Quarantine-rung run's metrics snapshot
 * (JSON / Prometheus exposition text) after the ladder completes.
 * Environment:
 *   GOLF_GUARD_WARMUP_S    warmup seconds    (default 2)
 *   GOLF_GUARD_DURATION_S  measured seconds  (default 10; smoke 6)
 *   GOLF_GUARD_SEED        master seed       (default 1)
 *   GOLF_RESULTS_DIR       where the JSON goes (default .)
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/guard_service.hpp"

using namespace golf;

namespace {

struct Row
{
    std::string name;
    rt::Recovery recovery;
    double leakRate;
    service::GuardResult r;
};

struct ObsOptions
{
    obs::Config obs;
    std::string metricsPath;
    std::string promPath;
};

service::GuardResult
runOnce(rt::Recovery recovery, double leakRate, uint64_t seed,
        support::VTime warmup, support::VTime duration,
        const ObsOptions& oo, bool capture)
{
    service::GuardServiceConfig cfg;
    cfg.recovery = recovery;
    cfg.leakRate = leakRate;
    cfg.seed = seed;
    cfg.warmup = warmup;
    cfg.duration = duration;
    cfg.obs = oo.obs;
    cfg.captureObs = capture;
    return service::runGuardService(cfg);
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    ObsOptions oo;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--smoke" || arg == "-smoke") {
            smoke = true;
        } else if (arg == "-metrics") {
            const char* v = next();
            if (v)
                oo.metricsPath = v;
        } else if (arg == "-prom") {
            const char* v = next();
            if (v)
                oo.promPath = v;
        } else if (arg == "-gctrace") {
            oo.obs.gctrace = true;
        } else if (arg == "-flight") {
            const char* v = next();
            if (v)
                oo.obs.flightRecords =
                    static_cast<size_t>(std::atoll(v));
        } else if (arg == "-blockprofile") {
            const char* v = next();
            if (v)
                oo.obs.blockProfileRateNs =
                    static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-mutexprofile") {
            const char* v = next();
            if (v)
                oo.obs.mutexProfileRateNs =
                    static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-no-obs") {
            oo.obs.enabled = false;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 2;
        }
    }
    const uint64_t seed =
        static_cast<uint64_t>(bench::envInt("GOLF_GUARD_SEED", 1));
    const support::VTime warmup =
        static_cast<support::VTime>(
            bench::envInt("GOLF_GUARD_WARMUP_S", 2)) *
        support::kSecond;
    const support::VTime duration =
        static_cast<support::VTime>(bench::envInt(
            "GOLF_GUARD_DURATION_S", smoke ? 6 : 10)) *
        support::kSecond;

    std::printf("service_guard: leak-free baseline...\n");
    service::GuardResult base =
        runOnce(rt::Recovery::Detect, 0.0, seed, warmup, duration,
                oo, /*capture=*/false);

    const bool wantCapture =
        !oo.metricsPath.empty() || !oo.promPath.empty();
    std::vector<Row> rows;
    for (rt::Recovery rung :
         {rt::Recovery::Detect, rt::Recovery::Cancel,
          rt::Recovery::Reclaim, rt::Recovery::Quarantine}) {
        std::printf("service_guard: rung=%s leak=0.10...\n",
                    rt::recoveryName(rung));
        // Snapshot metrics off the Quarantine rung: it exercises the
        // whole ladder (cancel -> reclaim -> quarantine counters).
        const bool capture =
            wantCapture && rung == rt::Recovery::Quarantine;
        rows.push_back(Row{rt::recoveryName(rung), rung, 0.10,
                           runOnce(rung, 0.10, seed, warmup,
                                   duration, oo, capture)});
    }
    if (!oo.metricsPath.empty()) {
        std::ofstream mf(oo.metricsPath);
        mf << rows.back().r.metricsJson;
        std::printf("metrics snapshot written to %s\n",
                    oo.metricsPath.c_str());
    }
    if (!oo.promPath.empty()) {
        std::ofstream pf(oo.promPath);
        pf << rows.back().r.prometheus;
        std::printf("prometheus snapshot written to %s\n",
                    oo.promPath.c_str());
    }

    const std::string path =
        bench::csvPath("BENCH_service_guard.json");
    std::ofstream out(path);
    out << "{\n  \"baseline_goodput_rps\": " << base.goodputRps
        << ",\n  \"seed\": " << seed << ",\n  \"rungs\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        const double ratio = base.goodputRps > 0
            ? row.r.goodputRps / base.goodputRps : 0.0;
        out << "    {\"rung\": \"" << row.name
            << "\", \"leak_rate\": " << row.leakRate
            << ", \"goodput_rps\": " << row.r.goodputRps
            << ", \"goodput_vs_baseline\": " << ratio
            << ", \"deadlocks_detected\": " << row.r.deadlocksDetected
            << ", \"cancels\": " << row.r.metrics.cancelled
            << ", \"recovered\": " << row.r.metrics.recovered
            << ", \"shed\": " << row.r.metrics.shed
            << ", \"retried\": " << row.r.metrics.retried
            << ", \"timed_out\": " << row.r.metrics.timedOut
            << ", \"resurrections\": " << row.r.metrics.resurrections
            << ", \"watchdog_triggers\": "
            << row.r.metrics.watchdogTriggers
            << ", \"heap_inuse\": " << row.r.heapInuse
            << ", \"num_gc\": " << row.r.numGC << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";

    std::printf("\n%-12s %12s %8s %10s %10s %8s %12s\n", "rung",
                "goodput_rps", "vs_base", "detected", "recovered",
                "shed", "heap_inuse");
    bool ok = !base.failed && base.goodputRps > 0;
    double cancelRatio = 0;
    for (const Row& row : rows) {
        const double ratio = base.goodputRps > 0
            ? row.r.goodputRps / base.goodputRps : 0.0;
        if (row.recovery == rt::Recovery::Cancel)
            cancelRatio = ratio;
        std::printf("%-12s %12.2f %7.1f%% %10zu %10zu %8zu %12llu\n",
                    row.name.c_str(), row.r.goodputRps, 100 * ratio,
                    row.r.deadlocksDetected, row.r.metrics.recovered,
                    row.r.metrics.shed,
                    static_cast<unsigned long long>(row.r.heapInuse));
        if (row.r.failed) {
            std::fprintf(stderr, "FAIL rung %s: run panicked\n",
                         row.name.c_str());
            ok = false;
        }
        if (row.r.metrics.resurrections != 0) {
            std::fprintf(stderr,
                         "FAIL rung %s: %zu resurrections "
                         "(false positives)\n",
                         row.name.c_str(),
                         row.r.metrics.resurrections);
            ok = false;
        }
    }
    if (cancelRatio < 0.90) {
        std::fprintf(stderr,
                     "FAIL cancel-rung goodput %.1f%% of baseline "
                     "(need >= 90%%)\n",
                     100 * cancelRatio);
        ok = false;
    }
    std::printf("results: %s\n%s\n", path.c_str(),
                ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
