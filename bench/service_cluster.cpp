/**
 * @file
 * Sharded-cluster service scenarios, emitted as BENCH_cluster.json.
 *
 * Four open-loop scenarios over the same workload seed:
 *
 *   baseline        fault-free links
 *   faulted         drop/dup/reorder/delay fault injection on every
 *                   inter-shard link
 *   rolling-restart one scheduled restart per shard, staggered
 *                   through the issue window (journal replay)
 *   flash-crowd     arrival rate x4 inside a window covering the
 *                   middle of the issue window
 *
 * Every scenario runs the same leak probability, so the cross-shard
 * GOLF pipeline (reclaim -> epoch-confirmed verdict) is active
 * throughout; the JSON records goodput (completed requests per
 * virtual second of issue window), latency percentiles and per-shard
 * watchdog pressure.
 *
 * Acceptance (wired into `bench_cluster_smoke`): every scenario must
 * finish clean with zero false-positive verdicts, and the faulted
 * scenario must sustain >= 85% of fault-free goodput.
 *
 * Usage:
 *   service_cluster [--smoke]
 * Environment:
 *   GOLF_CLUSTER_SHARDS    shard count       (default 4)
 *   GOLF_CLUSTER_WINDOW_S  issue window, sec (default 4; smoke 2)
 *   GOLF_CLUSTER_SEED      master seed       (default 1)
 *   GOLF_RESULTS_DIR       where the JSON goes (default .)
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"

using namespace golf;
using support::kMillisecond;
using support::kSecond;

namespace {

struct Row
{
    std::string name;
    cluster::ClusterResult r;
};

cluster::ClusterConfig
baseConfig(int shards, uint64_t seed, support::VTime window)
{
    cluster::ClusterConfig cfg;
    cfg.shards = shards;
    cfg.seed = seed;
    cfg.clientsPerShard = 3;
    cfg.issueWindow = window;
    cfg.grace = 1 * kSecond;
    cfg.thinkNs = 15 * kMillisecond;
    cfg.leakProb = 0.02;
    cfg.watchdog = true;
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke") ||
            !std::strcmp(argv[i], "-smoke")) {
            smoke = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
            return 2;
        }
    }
    const int shards = bench::envInt("GOLF_CLUSTER_SHARDS", 4);
    const uint64_t seed = static_cast<uint64_t>(
        bench::envInt("GOLF_CLUSTER_SEED", 1));
    const support::VTime window =
        static_cast<support::VTime>(bench::envInt(
            "GOLF_CLUSTER_WINDOW_S", smoke ? 2 : 4)) *
        kSecond;

    std::vector<Row> rows;

    {
        std::printf("service_cluster: baseline...\n");
        rows.push_back(
            {"baseline",
             cluster::runCluster(baseConfig(shards, seed, window))});
    }
    {
        std::printf("service_cluster: faulted...\n");
        cluster::ClusterConfig cfg = baseConfig(shards, seed, window);
        cfg.netfault.enabled = true;
        cfg.netfault.dropProb = 0.08;
        cfg.netfault.dupProb = 0.05;
        cfg.netfault.reorderProb = 0.05;
        cfg.netfault.delayProb = 0.05;
        rows.push_back({"faulted", cluster::runCluster(cfg)});
    }
    {
        std::printf("service_cluster: rolling-restart...\n");
        cluster::ClusterConfig cfg = baseConfig(shards, seed, window);
        // One restart per shard, staggered through the issue window.
        for (int s = 0; s < shards; ++s) {
            cfg.restarts.push_back(
                {s, window * (s + 1) / (shards + 1)});
        }
        rows.push_back({"rolling-restart", cluster::runCluster(cfg)});
    }
    {
        std::printf("service_cluster: flash-crowd...\n");
        cluster::ClusterConfig cfg = baseConfig(shards, seed, window);
        cfg.flashCrowdFactor = 4.0;
        cfg.flashStart = window / 4;
        cfg.flashDuration = window / 2;
        rows.push_back({"flash-crowd", cluster::runCluster(cfg)});
    }

    const std::string path = bench::csvPath("BENCH_cluster.json");
    std::ofstream out(path);
    out << "{\n  \"shards\": " << shards << ",\n  \"seed\": " << seed
        << ",\n  \"issue_window_s\": "
        << static_cast<double>(window) / static_cast<double>(kSecond)
        << ",\n  \"scenarios\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const cluster::ClusterResult& r = rows[i].r;
        out << "    {\"scenario\": \"" << rows[i].name
            << "\", \"goodput_rps\": " << r.goodput
            << ", \"p50_ms\": " << r.p50Ms
            << ", \"p99_ms\": " << r.p99Ms
            << ", \"p999_ms\": " << r.p999Ms
            << ", \"issued\": " << r.issued
            << ", \"completed\": " << r.completed
            << ", \"cancelled\": " << r.cancelled
            << ", \"verdicts\": " << r.verdicts
            << ", \"false_positives\": " << r.falsePositives
            << ", \"leaks_detected\": " << r.leaksDetected
            << ", \"leaks_detectable\": " << r.leaksDetectable
            << ", \"degraded_rounds\": " << r.degradedRounds
            << ", \"restarts\": " << r.restarts
            << ", \"net_sent\": " << r.net.sent
            << ", \"net_dropped\": " << r.net.dropped
            << ", \"net_retransmits\": " << r.net.retransmits
            << ", \"peak_watchdog_pressure\": [";
        for (size_t s = 0; s < r.shards.size(); ++s) {
            out << (s ? ", " : "") << r.shards[s].peakPressure;
        }
        out << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";

    std::printf("\n%-16s %12s %8s %8s %8s %9s %7s\n", "scenario",
                "goodput_rps", "p50_ms", "p99_ms", "p999_ms",
                "verdicts", "fp");
    bool ok = true;
    double baseGoodput = 0, faultedGoodput = 0;
    for (const Row& row : rows) {
        const cluster::ClusterResult& r = row.r;
        std::printf("%-16s %12.2f %8.2f %8.2f %8.2f %9llu %7llu\n",
                    row.name.c_str(), r.goodput, r.p50Ms, r.p99Ms,
                    r.p999Ms,
                    static_cast<unsigned long long>(r.verdicts),
                    static_cast<unsigned long long>(r.falsePositives));
        if (row.name == "baseline")
            baseGoodput = r.goodput;
        if (row.name == "faulted")
            faultedGoodput = r.goodput;
        if (r.failed) {
            std::fprintf(stderr, "FAIL %s: %s\n", row.name.c_str(),
                         r.failReason.c_str());
            ok = false;
        }
        if (r.falsePositives != 0) {
            std::fprintf(stderr,
                         "FAIL %s: %llu false-positive verdicts\n",
                         row.name.c_str(),
                         static_cast<unsigned long long>(
                             r.falsePositives));
            ok = false;
        }
    }
    if (baseGoodput <= 0) {
        std::fprintf(stderr, "FAIL baseline produced no goodput\n");
        ok = false;
    } else if (faultedGoodput < 0.85 * baseGoodput) {
        std::fprintf(stderr,
                     "FAIL faulted goodput %.2f < 85%% of "
                     "baseline %.2f\n",
                     faultedGoodput, baseGoodput);
        ok = false;
    }
    std::printf("results written to %s\n", path.c_str());
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
