/**
 * @file
 * Model-checking exploration benchmark: DPOR + sleep-set + visited
 * pruning vs naive full DFS on five representative patterns.
 *
 * For each pattern both modes explore the full choice tree (no
 * execution/state budget, failures do not stop exploration) and the
 * benchmark reports states, executions, wall-clock states/s and the
 * reduction ratio, asserting the two modes find the identical
 * deadlock (label) set. Results go to BENCH_mc.json.
 *
 * --smoke (the tier-1 `bench_mc_smoke` gate) exits non-zero unless
 *  - every pattern's deadlock set matches between modes, and
 *  - the aggregate naive/reduced state ratio is >= 5x.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mc/mc.hpp"
#include "microbench/registry.hpp"

namespace {

using namespace golf;

struct Row
{
    std::string pattern;
    bool correct = false;
    mc::McStats naive;
    mc::McStats reduced;
    double naiveSec = 0.0;
    double reducedSec = 0.0;
    bool labelsMatch = false;
    size_t failedLabels = 0;
};

double
seconds(const std::chrono::steady_clock::time_point& a,
        const std::chrono::steady_clock::time_point& b)
{
    return std::chrono::duration<double>(b - a).count();
}

Row
benchPattern(const microbench::Pattern& p)
{
    Row row;
    row.pattern = p.name;
    row.correct = p.correct;

    mc::McConfig reduced; // DPOR + sleep sets + visited, no budgets.
    mc::McConfig naive;
    naive.dpor = false;
    naive.sleepSets = false;
    naive.visited = false;

    const auto t0 = std::chrono::steady_clock::now();
    mc::ExploreResult rn = mc::explore(p, naive);
    const auto t1 = std::chrono::steady_clock::now();
    mc::ExploreResult rr = mc::explore(p, reduced);
    const auto t2 = std::chrono::steady_clock::now();

    row.naive = rn.stats;
    row.reduced = rr.stats;
    row.naiveSec = seconds(t0, t1);
    row.reducedSec = seconds(t1, t2);
    row.labelsMatch = rn.failedLabels == rr.failedLabels &&
                      rn.foundFailure == rr.foundFailure;
    row.failedLabels = rr.failedLabels.size();
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0 ||
            std::strcmp(argv[i], "-smoke") == 0)
            smoke = true;
    (void)smoke; // Same sweep either way; --smoke only gates.

    // Representative spread: the largest correct trees in the corpus
    // plus two deterministic leaky patterns (non-empty deadlock sets
    // for the identical-verdict assertion).
    const struct
    {
        const char* name;
        bool correct;
    } picks[] = {
        {"etcd/7443", true},     {"cgo/ex3", true},
        {"cockroach/1055", true}, {"cgo/ex5", false},
        {"moby/21233", false},
    };

    std::vector<Row> rows;
    for (const auto& pick : picks) {
        const microbench::Pattern* p = nullptr;
        for (const auto& cand : microbench::Registry::instance().all())
            if (cand.name == pick.name && cand.correct == pick.correct)
                p = &cand;
        if (p == nullptr) {
            std::fprintf(stderr, "unknown pattern %s\n", pick.name);
            return 2;
        }
        rows.push_back(benchPattern(*p));
    }

    uint64_t naiveStates = 0, reducedStates = 0;
    uint64_t naiveExecs = 0, reducedExecs = 0;
    bool allMatch = true;
    std::printf("%-18s %9s %9s %9s %9s %8s %s\n", "pattern",
                "naive-st", "red-st", "naive-ex", "red-ex", "ratio",
                "labels");
    for (const Row& r : rows) {
        naiveStates += r.naive.states;
        reducedStates += r.reduced.states;
        naiveExecs += r.naive.executions;
        reducedExecs += r.reduced.executions;
        allMatch = allMatch && r.labelsMatch;
        const double ratio =
            r.reduced.states
                ? static_cast<double>(r.naive.states) /
                      static_cast<double>(r.reduced.states)
                : 0.0;
        std::printf("%-18s %9llu %9llu %9llu %9llu %8.1f %s\n",
                    r.pattern.c_str(),
                    static_cast<unsigned long long>(r.naive.states),
                    static_cast<unsigned long long>(r.reduced.states),
                    static_cast<unsigned long long>(
                        r.naive.executions),
                    static_cast<unsigned long long>(
                        r.reduced.executions),
                    ratio, r.labelsMatch ? "match" : "MISMATCH");
    }
    const double aggRatio =
        reducedStates ? static_cast<double>(naiveStates) /
                            static_cast<double>(reducedStates)
                      : 0.0;
    double totalSec = 0.0;
    uint64_t totalStates = 0;
    for (const Row& r : rows) {
        totalSec += r.naiveSec + r.reducedSec;
        totalStates += r.naive.states + r.reduced.states;
    }
    const double statesPerSec =
        totalSec > 0.0 ? static_cast<double>(totalStates) / totalSec
                       : 0.0;
    std::printf("aggregate: states %llu -> %llu (%.1fx), execs %llu "
                "-> %llu, %.0f states/s\n",
                static_cast<unsigned long long>(naiveStates),
                static_cast<unsigned long long>(reducedStates),
                aggRatio,
                static_cast<unsigned long long>(naiveExecs),
                static_cast<unsigned long long>(reducedExecs),
                statesPerSec);

    const std::string path = bench::csvPath("BENCH_mc.json");
    std::ofstream out(path);
    out << "{\n  \"bench\": \"mc_explore\",\n  \"patterns\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        const double ratio =
            r.reduced.states
                ? static_cast<double>(r.naive.states) /
                      static_cast<double>(r.reduced.states)
                : 0.0;
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "    {\"pattern\": \"%s\", \"correct\": %s, "
            "\"naive_states\": %llu, \"reduced_states\": %llu, "
            "\"naive_executions\": %llu, \"reduced_executions\": "
            "%llu, \"naive_seconds\": %.6f, \"reduced_seconds\": "
            "%.6f, \"reduction_ratio\": %.2f, \"labels_match\": %s, "
            "\"failed_labels\": %zu}%s\n",
            r.pattern.c_str(), r.correct ? "true" : "false",
            static_cast<unsigned long long>(r.naive.states),
            static_cast<unsigned long long>(r.reduced.states),
            static_cast<unsigned long long>(r.naive.executions),
            static_cast<unsigned long long>(r.reduced.executions),
            r.naiveSec, r.reducedSec, ratio,
            r.labelsMatch ? "true" : "false", r.failedLabels,
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    char tail[256];
    std::snprintf(tail, sizeof tail,
                  "  ],\n  \"aggregate_reduction_ratio\": %.2f,\n"
                  "  \"states_per_second\": %.0f\n}\n",
                  aggRatio, statesPerSec);
    out << tail;
    std::printf("wrote %s\n", path.c_str());

    if (!allMatch) {
        std::fprintf(stderr,
                     "FAIL: reduced exploration missed deadlocks\n");
        return 1;
    }
    if (aggRatio < 5.0) {
        std::fprintf(stderr,
                     "FAIL: aggregate reduction %.2fx below 5x\n",
                     aggRatio);
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
