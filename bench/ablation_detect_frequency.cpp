/**
 * @file
 * Ablation for the closing remark of Section 6.2: running deadlock
 * detection only every Nth GC cycle reduces GOLF's overhead further
 * "at no cost to efficacy" — the same deadlocks are still found,
 * just (bounded) later.
 *
 * The bench runs the controlled leaky service at detection periods
 * N in {1, 2, 5, 10} and reports: deadlocks found, mean detection
 * latency is approximated by surviving leaked memory, and the
 * STW-pause total (the overhead the paper wants reduced).
 *
 * Expected shape: deadlock counts stay ~constant across N; pause
 * total drops roughly with 1/N toward the baseline's.
 *
 * Knobs: GOLF_DURATION_S (default 20), GOLF_SEED.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "golf/collector.hpp"
#include "service/service.hpp"

int
main()
{
    namespace bench = golf::bench;
    const int durationS = bench::envInt("GOLF_DURATION_S", 20);
    const auto seed =
        static_cast<uint64_t>(bench::envInt("GOLF_SEED", 23));

    std::printf("Ablation (Section 6.2): detection every Nth GC "
                "cycle, controlled service @ 10%% leak, %ds\n\n",
                durationS);
    std::printf("%-6s %12s %12s %16s %14s %12s\n", "N", "deadlocks",
                "NumGC", "PauseTotal(ms)", "Pause/GC(us)",
                "HeapEnd(MB)");

    std::ofstream csv(bench::csvPath("ablation_detect_frequency.csv"));
    csv << "detect_every_n,deadlocks,num_gc,pause_total_ns,"
           "pause_per_cycle_ns,heap_alloc_end\n";

    for (int n : {1, 2, 5, 10}) {
        golf::service::ServiceConfig cfg;
        cfg.seed = seed;
        cfg.leakRate = 0.10;
        cfg.duration = durationS * golf::support::kSecond;
        cfg.gcMode = golf::rt::GcMode::Golf;

        // Thread the detection period through the runtime config by
        // running the service with a customized runtime: the service
        // module reads it from ServiceConfig.
        cfg.detectEveryN = n;

        auto r = golf::service::runControlledService(cfg);
        std::printf("%-6d %12zu %12llu %16.2f %14.2f %12.2f\n", n,
                    r.deadlocksDetected,
                    static_cast<unsigned long long>(r.numGC),
                    static_cast<double>(r.pauseTotalNs) / 1e6,
                    r.pausePerCycleNs / 1e3,
                    static_cast<double>(r.heapAlloc) / 1e6);
        csv << n << "," << r.deadlocksDetected << "," << r.numGC
            << "," << r.pauseTotalNs << "," << r.pausePerCycleNs
            << "," << r.heapAlloc << "\n";
    }

    std::printf("\nCSV written to %s\n",
                bench::csvPath("ablation_detect_frequency.csv")
                    .c_str());
    return 0;
}
