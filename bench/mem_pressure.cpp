/**
 * @file
 * Goodput and heap high-water under a soft memory limit, emitted as
 * BENCH_mem.json.
 *
 * The experiment: the guarded service (src/service/guard_service.*)
 * runs three times on the Quarantine rung.
 *
 *   1. leak-free, no limit        -> leak-free peak heap (peak0)
 *   2. leakRate=0.10, no limit    -> unlimited goodput baseline
 *   3. leakRate=0.10, soft limit = 2 * peak0, scavenge-on-GC on
 *
 * Run 3 is the memory-pressure ladder's proving ground: the leak
 * pushes live bytes toward the limit, the pacer pulls GC (and GOLF
 * detection) earlier, the ladder scavenges retired spans, forces
 * detection passes, sheds at admission, and must NEVER reach the
 * FatalReport rung — recovery reclaims the leaked children faster
 * than the leak accretes.
 *
 * Acceptance (wired into `bench_mem_smoke`):
 *   - zero fatal OOM reports and a clean (non-panicked) limited run;
 *   - peak modeled heap <= limit + one span (64 KiB) of slack;
 *   - limited goodput >= 85% of the unlimited leaky baseline.
 * Deterministic per seed.
 *
 * Usage:
 *   mem_pressure [--smoke]
 *
 * Environment:
 *   GOLF_MEM_WARMUP_S    warmup seconds    (default 2)
 *   GOLF_MEM_DURATION_S  measured seconds  (default 10; smoke 6)
 *   GOLF_MEM_SEED        master seed       (default 1)
 *   GOLF_RESULTS_DIR     where the JSON goes (default .)
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "gc/span.hpp"
#include "service/guard_service.hpp"

using namespace golf;

namespace {

service::GuardResult
runOnce(double leakRate, uint64_t softLimit, bool scavenge,
        uint64_t seed, support::VTime warmup, support::VTime duration)
{
    service::GuardServiceConfig cfg;
    cfg.recovery = rt::Recovery::Quarantine;
    cfg.leakRate = leakRate;
    cfg.seed = seed;
    cfg.warmup = warmup;
    cfg.duration = duration;
    cfg.heap.softLimitBytes = softLimit;
    cfg.mem.scavengeOnGc = scavenge;
    return service::runGuardService(cfg);
}

void
emitRow(std::ofstream& out, const char* name, double leakRate,
        uint64_t softLimit, const service::GuardResult& r, bool last)
{
    out << "    {\"run\": \"" << name
        << "\", \"leak_rate\": " << leakRate
        << ", \"soft_limit_bytes\": " << softLimit
        << ", \"goodput_rps\": " << r.goodputRps
        << ", \"heap_peak\": " << r.heapPeak
        << ", \"heap_inuse\": " << r.heapInuse
        << ", \"num_gc\": " << r.numGC
        << ", \"deadlocks_detected\": " << r.deadlocksDetected
        << ", \"mem_scavenges\": " << r.memScavenges
        << ", \"mem_forced_golfs\": " << r.memForcedGolfs
        << ", \"mem_shed\": " << r.metrics.memShed
        << ", \"fatal_ooms\": " << r.fatalOoms
        << ", \"failed\": " << (r.failed ? "true" : "false") << "}"
        << (last ? "" : ",") << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke" || arg == "-smoke") {
            smoke = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 2;
        }
    }
    const uint64_t seed =
        static_cast<uint64_t>(bench::envInt("GOLF_MEM_SEED", 1));
    const support::VTime warmup =
        static_cast<support::VTime>(
            bench::envInt("GOLF_MEM_WARMUP_S", 2)) *
        support::kSecond;
    const support::VTime duration =
        static_cast<support::VTime>(
            bench::envInt("GOLF_MEM_DURATION_S", smoke ? 6 : 10)) *
        support::kSecond;

    std::printf("mem_pressure: leak-free unlimited (peak probe)...\n");
    const service::GuardResult clean =
        runOnce(0.0, 0, false, seed, warmup, duration);

    std::printf("mem_pressure: leak=0.10 unlimited (baseline)...\n");
    const service::GuardResult leaky =
        runOnce(0.10, 0, false, seed, warmup, duration);

    // The headroom the limited run has to live in: twice the
    // leak-free peak. Tight enough that an unchecked 10% leak blows
    // through it, generous enough that recovery can hold the line.
    const uint64_t limit = 2 * clean.heapPeak;
    std::printf("mem_pressure: leak=0.10 limit=%llu...\n",
                static_cast<unsigned long long>(limit));
    const service::GuardResult limited =
        runOnce(0.10, limit, true, seed, warmup, duration);

    const std::string path = bench::csvPath("BENCH_mem.json");
    std::ofstream out(path);
    out << "{\n  \"seed\": " << seed
        << ",\n  \"soft_limit_bytes\": " << limit
        << ",\n  \"runs\": [\n";
    emitRow(out, "clean-unlimited", 0.0, 0, clean, false);
    emitRow(out, "leaky-unlimited", 0.10, 0, leaky, false);
    emitRow(out, "leaky-limited", 0.10, limit, limited, true);
    out << "  ]\n}\n";

    const double ratio = leaky.goodputRps > 0
        ? limited.goodputRps / leaky.goodputRps : 0.0;
    std::printf("\n%-16s %12s %12s %10s %10s %6s\n", "run",
                "goodput_rps", "heap_peak", "scavenges", "forced",
                "ooms");
    std::printf("%-16s %12.2f %12llu %10s %10s %6s\n",
                "clean-unlimited", clean.goodputRps,
                static_cast<unsigned long long>(clean.heapPeak), "-",
                "-", "-");
    std::printf("%-16s %12.2f %12llu %10s %10s %6s\n",
                "leaky-unlimited", leaky.goodputRps,
                static_cast<unsigned long long>(leaky.heapPeak), "-",
                "-", "-");
    std::printf("%-16s %12.2f %12llu %10llu %10llu %6llu\n",
                "leaky-limited", limited.goodputRps,
                static_cast<unsigned long long>(limited.heapPeak),
                static_cast<unsigned long long>(limited.memScavenges),
                static_cast<unsigned long long>(limited.memForcedGolfs),
                static_cast<unsigned long long>(limited.fatalOoms));
    std::printf("limited/leaky goodput ratio: %.2fx\n", ratio);

    bool ok = true;
    if (clean.failed || leaky.failed) {
        std::fprintf(stderr, "FAIL unlimited run panicked\n");
        ok = false;
    }
    if (limited.failed) {
        std::fprintf(stderr, "FAIL limited run panicked\n");
        ok = false;
    }
    if (limited.fatalOoms != 0) {
        std::fprintf(stderr,
                     "FAIL %llu fatal OOM reports under the limit "
                     "(need 0)\n",
                     static_cast<unsigned long long>(
                         limited.fatalOoms));
        ok = false;
    }
    if (limited.heapPeak > limit + gc::kSpanSize) {
        std::fprintf(stderr,
                     "FAIL peak heap %llu over limit %llu + one-span "
                     "slack %zu\n",
                     static_cast<unsigned long long>(limited.heapPeak),
                     static_cast<unsigned long long>(limit),
                     gc::kSpanSize);
        ok = false;
    }
    if (ratio < 0.85) {
        std::fprintf(stderr,
                     "FAIL limited goodput %.1f%% of unlimited leaky "
                     "baseline (need >= 85%%)\n",
                     100 * ratio);
        ok = false;
    }
    std::printf("results: %s\n%s\n", path.c_str(),
                ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
