/**
 * @file
 * Baseline-comparison ablation (Section 7 context): GOLF vs GOLEAK
 * vs LeakProf on one service run with ground truth.
 *
 * The scenario: a service leaks one goroutine per "request burst" at
 * three distinct sites (slow leaks), and additionally runs a hot but
 * perfectly healthy worker pool with many goroutines parked at one
 * receive site (legitimate congestion).
 *
 *  - GOLF detects every true leak online, zero false positives.
 *  - LeakProf (threshold-based profile sampling) flags the healthy
 *    pool (false positive) and misses the slow leaks (false
 *    negative) until enough accumulate at one site.
 *  - GOLEAK sees all true leaks but only once the process ends.
 *
 * Knobs: GOLF_BURSTS (default 40), GOLF_THRESHOLD (default 12).
 */
#include <cstdio>

#include "bench_common.hpp"
#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "leakdetect/goleak.hpp"
#include "leakdetect/leakprof.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace golf;
using chan::Channel;
using chan::makeChan;
using support::kMillisecond;

struct Tally
{
    size_t leakprofTrueSites = 0;
    size_t leakprofFalseSites = 0;
    size_t golfMidRun = 0;
    std::string healthySite;
};

rt::Go
poolWorker(Channel<int>* jobs)
{
    while (true) {
        auto r = co_await chan::recv(jobs);
        if (!r.ok)
            break;
        rt::busy(10 * support::kMicrosecond);
    }
    co_return;
}

rt::Go
leakA(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
leakB(Channel<int>* ch)
{
    co_await chan::send(ch, 1);
    co_return;
}

rt::Go
leakC(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
scenario(rt::Runtime* rtp, leakdetect::LeakProf* prof, Tally* tally,
         int bursts)
{
    rt::Runtime& rt = *rtp;

    // The healthy-but-congested pool: 24 workers on one receive.
    gc::Local<Channel<int>> jobs(makeChan<int>(rt, 0));
    for (int i = 0; i < 24; ++i)
        GOLF_GO(rt, poolWorker, jobs.get());
    co_await rt::sleepFor(kMillisecond);
    // Record the pool's block site for FP attribution.
    for (rt::Goroutine* g : rtp->blockedCandidates())
        tally->healthySite = g->blockSite().str();

    for (int b = 0; b < bursts; ++b) {
        // One slow leak per burst, rotating over three sites.
        switch (b % 3) {
          case 0:
            GOLF_GO(rt, leakA, makeChan<int>(rt, 0));
            break;
          case 1:
            GOLF_GO(rt, leakB, makeChan<int>(rt, 0));
            break;
          default:
            GOLF_GO(rt, leakC, makeChan<int>(rt, 0));
            break;
        }
        // Healthy traffic through the pool.
        for (int i = 0; i < 4; ++i)
            co_await chan::send(jobs.get(), i);
        co_await rt::sleepFor(5 * kMillisecond);
        co_await rt::gcNow(); // GOLF runs online
        prof->sample(rt);     // LeakProf samples its profile
    }

    tally->golfMidRun = rtp->collector().reports().total();
    chan::close(jobs.get()); // drain the healthy pool
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

} // namespace

int
main()
{
    namespace bench = golf::bench;
    const int bursts = bench::envInt("GOLF_BURSTS", 40);
    const auto threshold = static_cast<size_t>(
        bench::envInt("GOLF_THRESHOLD", 12));

    rt::Config cfg;
    cfg.seed = 31;
    cfg.recovery = rt::Recovery::ReportOnly; // keep GOLEAK's view
    rt::Runtime runtime(cfg);
    leakdetect::LeakProf prof(threshold);
    Tally tally;
    runtime.runMain(scenario, &runtime, &prof, &tally, bursts);

    // Attribute LeakProf's flags against ground truth.
    for (const auto& [site, count] : prof.everFlagged()) {
        if (site == tally.healthySite)
            ++tally.leakprofFalseSites;
        else
            ++tally.leakprofTrueSites;
    }
    auto goleak = leakdetect::findLeaks(runtime);

    std::printf("Baselines ablation: %d slow leaks over 3 sites + a "
                "healthy 24-worker pool\n\n", bursts);
    std::printf("%-10s %12s %12s %16s %16s\n", "tool", "true leaks",
                "dedup", "false positives", "when");
    std::printf("%-10s %12zu %12zu %16d %16s\n", "GOLF",
                tally.golfMidRun,
                runtime.collector().reports().deduplicated(), 0,
                "online");
    std::printf("%-10s %12zu %12zu %16zu %16s\n", "LeakProf",
                static_cast<size_t>(0), tally.leakprofTrueSites,
                tally.leakprofFalseSites, "sampled");
    std::printf("%-10s %12zu %12zu %16d %16s\n", "GOLEAK",
                goleak.total(), goleak.dedupCounts().size(), 0,
                "process end");

    std::printf("\nLeakProf flagged the healthy pool %zu time(s) "
                "(threshold %zu) and attributed\n%zu leak site(s) "
                "only after enough leaks piled up; GOLF reported "
                "each leak as it\nbecame unreachable, with zero "
                "false positives by construction.\n",
                tally.leakprofFalseSites, threshold,
                tally.leakprofTrueSites);

    std::ofstream csv(bench::csvPath("ablation_baselines.csv"));
    csv << "tool,true_individual,dedup,false_positive_sites\n";
    csv << "golf," << tally.golfMidRun << ","
        << runtime.collector().reports().deduplicated() << ",0\n";
    csv << "leakprof,," << tally.leakprofTrueSites << ","
        << tally.leakprofFalseSites << "\n";
    csv << "goleak," << goleak.total() << ","
        << goleak.dedupCounts().size() << ",0\n";
    std::printf("\nCSV written to %s\n",
                bench::csvPath("ablation_baselines.csv").c_str());
    return 0;
}
