/**
 * @file
 * Regenerates Table 1 (RQ1(a)): per-leaky-go-site detection counts
 * for the 73-microbenchmark corpus, over 100 repetitions at 1, 2, 4
 * and 10 virtual cores.
 *
 * Output format follows the paper: one row per go site that was not
 * detected in every run, a "Remaining" row aggregating the
 * always-detected sites, and an "Aggregated (%)" footer. Expected
 * shape: aggregate ~94-95%, etcd/7443 near zero (rare hits at 10
 * cores), grpc/3017 zero at one core and ~100% elsewhere.
 *
 * Knobs: GOLF_REPEATS (default 100), GOLF_SEED, GOLF_RESULTS_DIR.
 */
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"

namespace {

using namespace golf;
using namespace golf::microbench;

struct SiteRow
{
    std::string label;
    std::map<int, int> detected; // procs -> runs detected
    int totalRuns = 0;           // per-procs runs
};

} // namespace

int
main()
{
    const int repeats = bench::envInt("GOLF_REPEATS", 100);
    const uint64_t seed =
        static_cast<uint64_t>(bench::envInt("GOLF_SEED", 1));
    const std::vector<int> coreCounts{1, 2, 4, 10};

    Registry& reg = Registry::instance();
    std::map<std::string, SiteRow> rows;

    for (const Pattern* p : reg.deadlocking()) {
        for (int procs : coreCounts) {
            HarnessConfig cfg;
            cfg.procs = procs;
            cfg.seed = seed * 1000003ull +
                       static_cast<uint64_t>(procs) * 101;
            auto sites = runPatternRepeated(*p, cfg, repeats);
            for (const auto& s : sites) {
                SiteRow& row = rows[s.label];
                row.label = s.label;
                row.detected[procs] = s.detectedRuns;
                row.totalRuns = s.totalRuns;
            }
        }
        std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, "\n");

    // ---- paper-style table ----
    std::printf("Table 1 (RQ1(a)): partial-deadlock detection per "
                "go instruction, %d runs per configuration\n\n",
                repeats);
    std::printf("%-26s %6s %6s %6s %6s   %s\n", "Benchmark line", "1",
                "2", "4", "10", "Total");

    std::ofstream csv(bench::csvPath("table1.csv"));
    csv << "site,procs1,procs2,procs4,procs10,total_pct\n";

    int shownSites = 0;
    int remainingSites = 0;
    std::map<int, long> detectedByProcs;
    long grandDetected = 0, grandRuns = 0;
    std::map<std::string, bool> benchHasShown;

    for (auto& [label, row] : rows) {
        long total = 0;
        for (int procs : coreCounts)
            total += row.detected[procs];
        const long runs = static_cast<long>(coreCounts.size()) *
                          row.totalRuns;
        for (int procs : coreCounts)
            detectedByProcs[procs] += row.detected[procs];
        grandDetected += total;
        grandRuns += runs;

        const double pct =
            100.0 * static_cast<double>(total) /
            static_cast<double>(runs);
        csv << label;
        for (int procs : coreCounts)
            csv << "," << row.detected[procs];
        csv << "," << pct << "\n";

        if (total == runs) {
            ++remainingSites;
            continue;
        }
        ++shownSites;
        std::printf("%-26s %6d %6d %6d %6d   %6.2f%%\n",
                    label.c_str(), row.detected[1], row.detected[2],
                    row.detected[4], row.detected[10], pct);
    }

    std::printf("%-26s %27s\n",
                ("Remaining " + std::to_string(remainingSites) +
                 " go instructions")
                    .c_str(),
                "100.00% each");

    std::printf("%-26s", "Aggregated (%)");
    for (int procs : coreCounts) {
        double pct = 100.0 *
                     static_cast<double>(detectedByProcs[procs]) /
                     (static_cast<double>(rows.size()) * repeats);
        std::printf(" %5.1f%%", pct);
    }
    std::printf("   %6.2f%%\n",
                100.0 * static_cast<double>(grandDetected) /
                    static_cast<double>(grandRuns));

    std::printf("\n%zu go instructions across %zu benchmarks "
                "(%d shown, %d at 100%%)\n",
                rows.size(), reg.deadlocking().size(), shownSites,
                remainingSites);
    std::printf("CSV written to %s\n",
                bench::csvPath("table1.csv").c_str());
    return 0;
}
