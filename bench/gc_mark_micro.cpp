/**
 * @file
 * google-benchmark micro-benchmarks for the collector itself,
 * covering the Section 5.3 complexity discussion:
 *
 *  - the daisy-chain worst case (n mark iterations, O(N^2 + NS));
 *  - the flat blocked-set case (one extra iteration, S checks);
 *  - Baseline-vs-GOLF marking on the same object graph;
 *  - runtime primitives (spawn, channel ping-pong) as context.
 *
 * Complexity fits are emitted via benchmark's --benchmark_* flags.
 */
#include <benchmark/benchmark.h>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace golf;
using chan::Channel;
using chan::makeChan;

rt::Go
chainLink(Channel<int>* in, Channel<int>* out)
{
    int v = (co_await chan::recv(in)).value;
    co_await chan::send(out, v);
    co_return;
}

/** Build a daisy chain of n blocked goroutines, then GC per
 *  benchmark iteration; every cycle needs ~n mark iterations. */
rt::Go
chainBench(rt::Runtime* rtp, benchmark::State* state, int n)
{
    gc::Local<Channel<int>> head(makeChan<int>(*rtp, 0));
    Channel<int>* prev = head.get();
    for (int i = 0; i < n; ++i) {
        auto* next = makeChan<int>(*rtp, 0);
        GOLF_GO(*rtp, chainLink, prev, next);
        prev = next;
    }
    // Let every link park.
    for (int i = 0; i < 2 * n + 2; ++i)
        co_await rt::yield();

    for (auto _ : *state)
        co_await rt::gcNow();

    // Unblock the chain so the run ends without deadlock reports.
    co_await chan::send(head.get(), 1);
    co_await rt::sleepFor(support::kMillisecond);
    co_return;
}

void
collectChain(benchmark::State& state, rt::GcMode mode,
             bool eager = false)
{
    rt::Config cfg;
    cfg.gcMode = mode;
    cfg.eagerLivenessMarking = eager;
    cfg.heap.minTriggerBytes = 1ull << 30; // only forced GCs
    rt::Runtime runtime(cfg);
    runtime.runMain(chainBench, &runtime, &state,
                    static_cast<int>(state.range(0)));
    state.SetComplexityN(state.range(0));
}

void
BM_GolfCollect_DaisyChain(benchmark::State& state)
{
    collectChain(state, rt::GcMode::Golf);
}
BENCHMARK(BM_GolfCollect_DaisyChain)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity(benchmark::oNSquared);

void
BM_BaselineCollect_DaisyChain(benchmark::State& state)
{
    collectChain(state, rt::GcMode::Baseline);
}
BENCHMARK(BM_BaselineCollect_DaisyChain)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity(benchmark::oN);

/** Ablation: the Section 5.3 eager-liveness extension turns the
 *  quadratic daisy chain linear. */
void
BM_GolfEagerCollect_DaisyChain(benchmark::State& state)
{
    collectChain(state, rt::GcMode::Golf, /*eager=*/true);
}
BENCHMARK(BM_GolfEagerCollect_DaisyChain)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity(benchmark::oN);

rt::Go
parkedReceiver(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

/** n independently blocked (but live) goroutines: the fixpoint
 *  needs one extra iteration and N reachability checks. */
rt::Go
flatBench(rt::Runtime* rtp, benchmark::State* state, int n)
{
    std::vector<Channel<int>*> chans;
    gc::Local<Channel<int>> keepAll[1]; // root the channels via a list
    struct ChanList : gc::Object
    {
        std::vector<Channel<int>*> items;
        void
        trace(gc::Marker& m) override
        {
            for (auto* c : items)
                m.mark(c);
        }
    };
    gc::Local<ChanList> list(rtp->make<ChanList>());
    for (int i = 0; i < n; ++i) {
        auto* ch = makeChan<int>(*rtp, 0);
        list->items.push_back(ch);
        GOLF_GO(*rtp, parkedReceiver, ch);
    }
    for (int i = 0; i < n + 2; ++i)
        co_await rt::yield();

    for (auto _ : *state)
        co_await rt::gcNow();

    for (auto* ch : list->items)
        co_await chan::send(ch, 1);
    co_await rt::sleepFor(support::kMillisecond);
    co_return;
}

void
BM_GolfCollect_FlatBlockedSet(benchmark::State& state)
{
    rt::Config cfg;
    cfg.heap.minTriggerBytes = 1ull << 30;
    rt::Runtime runtime(cfg);
    runtime.runMain(flatBench, &runtime, &state,
                    static_cast<int>(state.range(0)));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GolfCollect_FlatBlockedSet)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity(benchmark::oN);

// ---------------------------------------------------------------------
// Runtime primitives for context.

rt::Go
pong(Channel<int>* ping, Channel<int>* pongCh)
{
    for (;;) {
        auto r = co_await chan::recv(ping);
        if (!r.ok)
            break;
        co_await chan::send(pongCh, r.value);
    }
    co_return;
}

rt::Go
pingPongBench(rt::Runtime* rtp, benchmark::State* state)
{
    gc::Local<Channel<int>> ping(makeChan<int>(*rtp, 0));
    gc::Local<Channel<int>> pongCh(makeChan<int>(*rtp, 0));
    GOLF_GO(*rtp, pong, ping.get(), pongCh.get());
    for (auto _ : *state) {
        co_await chan::send(ping.get(), 1);
        co_await chan::recv(pongCh.get());
    }
    chan::close(ping.get());
    co_await rt::sleepFor(support::kMillisecond);
    co_return;
}

void
BM_ChannelPingPong(benchmark::State& state)
{
    rt::Config cfg;
    cfg.heap.minTriggerBytes = 1ull << 30;
    rt::Runtime runtime(cfg);
    runtime.runMain(pingPongBench, &runtime, &state);
}
BENCHMARK(BM_ChannelPingPong);

rt::Go
noopBody()
{
    co_return;
}

rt::Go
spawnBench(rt::Runtime* rtp, benchmark::State* state)
{
    for (auto _ : *state) {
        GOLF_GO(*rtp, noopBody);
        co_await rt::yield(); // run it; the pool recycles it
        co_await rt::yield();
    }
    co_return;
}

void
BM_SpawnRecycle(benchmark::State& state)
{
    rt::Config cfg;
    cfg.heap.minTriggerBytes = 1ull << 30;
    rt::Runtime runtime(cfg);
    runtime.runMain(spawnBench, &runtime, &state);
}
BENCHMARK(BM_SpawnRecycle);

} // namespace

BENCHMARK_MAIN();
