/**
 * @file
 * Regenerates RQ1(c): GOLF deployed on a real service for 24 hours.
 * Five instances of the production-service simulation run with the
 * GOLF runtime; partial deadlocks are collected from the report log
 * (the paper's logging-infrastructure analog) and traced back to
 * their source locations.
 *
 * Expected shape: a few hundred individual partial deadlocks (the
 * paper reports 252), all deduplicating to exactly three programming
 * errors — the three Listing 7-style bugs the handlers carry.
 *
 * Knobs: GOLF_HOURS (default 24), GOLF_INSTANCES (default 5),
 * GOLF_SEED.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "golf/collector.hpp"
#include "service/workload.hpp"

int
main()
{
    namespace bench = golf::bench;
    const int hours = bench::envInt("GOLF_HOURS", 24);
    const int instances = bench::envInt("GOLF_INSTANCES", 5);
    const auto seed =
        static_cast<uint64_t>(bench::envInt("GOLF_SEED", 17));

    std::printf("RQ1(c): GOLF on a real service — %d instances, "
                "%d hours\n\n", instances, hours);

    size_t totalDeadlocks = 0;
    size_t maxDedup = 0;
    size_t totalRequests = 0;
    for (int i = 0; i < instances; ++i) {
        golf::service::ProductionConfig cfg;
        cfg.seed = seed + static_cast<uint64_t>(i) * 7907;
        cfg.gcMode = golf::rt::GcMode::Golf;
        cfg.recovery = golf::rt::Recovery::Reclaim;
        cfg.duration = hours * golf::support::kHour;
        cfg.baseRps = 1.5;
        // The three programming errors of the paper's case study:
        // three handlers spawn async tasks and, on rare paths,
        // forget the completion channel (Listing 7).
        cfg.endpoints = {
            {0, 0.002, 0.10},  // SendEmail
            {1, 0.0015, 0.08}, // AuditLog
            {2, 0.001, 0.07},  // MetricsFlush
        };
        auto r = golf::service::runProductionService(cfg);
        std::printf("instance %d: %zu partial deadlocks "
                    "(%zu distinct source locations), %zu requests\n",
                    i + 1, r.deadlocksDetected, r.dedupReports,
                    r.requestsServed);
        totalDeadlocks += r.deadlocksDetected;
        maxDedup = std::max(maxDedup, r.dedupReports);
        totalRequests += r.requestsServed;
    }

    std::printf("\nover %d hours, GOLF detected %zu individual "
                "partial deadlocks\n", hours, totalDeadlocks);
    std::printf("caused by %zu programming errors "
                "(paper: 252 deadlocks, 3 errors)\n", maxDedup);
    std::printf("total requests served: %zu\n", totalRequests);

    std::ofstream csv(bench::csvPath("rq1c.csv"));
    csv << "instances,hours,total_deadlocks,distinct_errors,"
           "requests\n"
        << instances << "," << hours << "," << totalDeadlocks << ","
        << maxDedup << "," << totalRequests << "\n";
    std::printf("\nCSV written to %s\n",
                bench::csvPath("rq1c.csv").c_str());
    return 0;
}
