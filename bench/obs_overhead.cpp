/**
 * @file
 * Telemetry overhead, emitted as BENCH_obs_overhead.json. Two
 * workloads, three telemetry modes:
 *
 *   obs-off      rt::Config::obs.enabled = false — the runtime holds
 *                no Obs object and every trace-event site costs one
 *                predictable branch (asserted structurally below);
 *   flight-on    default telemetry: flight-recorder rings + metrics
 *                registry + park histograms, no contention profiles;
 *   full-tracer  obs off, legacy full-fidelity rt::Tracer enabled
 *                (unbounded in-order vector).
 *
 * Workload 1 (churn) is a worst case: spawn/park/ready/yield events
 * with almost no work between them, reported as events per wall
 * second (the virtual event count is identical across modes by
 * determinism). Workload 2 (gc-mark) is the paper's setting: GC
 * cycles over a large live object graph, where marking dominates and
 * telemetry sees only the per-cycle events.
 *
 * Each mode runs `repeats` times; the score is the run's median wall
 * time. Repeats are interleaved round-robin across modes so machine
 * drift hits all modes equally.
 *
 * Acceptance (wired into `bench_obs_overhead_smoke`): flight-on must
 * sustain >= 95% of obs-off throughput on the gc-mark workload —
 * always-on telemetry costs at most 5% of a marking-bound run — and
 * the obs-off run must be structurally bare (no Obs object, no
 * tracer records). Churn ratios are reported but not gated: with
 * ~tens of ns of total work per event there is no 5% to hide in.
 *
 * Usage:
 *   obs_overhead [--smoke]
 * Environment:
 *   GOLF_OBS_ROUNDS   churn spawn rounds per run (default 100; smoke 60)
 *   GOLF_OBS_SPAWNS   goroutines per round       (default 500)
 *   GOLF_OBS_NODES    gc-mark live graph size    (default 200000)
 *   GOLF_OBS_CYCLES   gc-mark GC cycles per run  (default 40; smoke 25)
 *   GOLF_OBS_REPEATS  runs per mode              (default 7; smoke 5)
 *   GOLF_RESULTS_DIR  where the JSON goes        (default .)
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chan/channel.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

using namespace golf;
using support::kMicrosecond;
using support::kMillisecond;

namespace {

// ------------------------------------------------------------------
// Workload 1: event churn.

rt::Go
worker(chan::Channel<int>* ch)
{
    co_await rt::sleepFor(10 * kMicrosecond);
    for (int i = 0; i < 2; ++i)
        co_await rt::yield();
    co_await chan::send(ch, 1);
    co_return;
}

rt::Go
drain(chan::Channel<int>* ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await chan::recv(ch);
    co_return;
}

rt::Go
churnMain(rt::Runtime* rtp, int rounds, int spawns)
{
    for (int r = 0; r < rounds; ++r) {
        gc::Local<chan::Channel<int>> ch(
            chan::makeChan<int>(*rtp, 8));
        GOLF_GO(*rtp, drain, ch.get(), spawns);
        for (int i = 0; i < spawns; ++i)
            GOLF_GO(*rtp, worker, ch.get());
        co_await rt::sleepFor(kMillisecond);
        if (r % 16 == 0)
            co_await rt::gcNow();
    }
    co_return;
}

// ------------------------------------------------------------------
// Workload 2: gc-mark. A long singly-linked live list; every gcNow()
// marks the whole graph through the tricolor worklist while obs sees
// only the per-cycle GcStart/GcEnd events and cycle stats.

struct Node : gc::Object
{
    Node* next = nullptr;
    void
    trace(gc::Marker& m) override
    {
        m.mark(next);
    }
};

rt::Go
markMain(rt::Runtime* rtp, int nodes, int cycles)
{
    gc::Local<Node> head(rtp->make<Node>());
    Node* cur = head.get();
    for (int i = 1; i < nodes; ++i) {
        Node* n = rtp->make<Node>();
        cur->next = n;
        cur = n;
    }
    for (int c = 0; c < cycles; ++c)
        co_await rt::gcNow();
    co_return;
}

// ------------------------------------------------------------------

enum Mode
{
    ObsOff,
    FlightOn,
    FullTracer,
};

const char*
modeName(Mode m)
{
    switch (m) {
      case ObsOff: return "obs-off";
      case FlightOn: return "flight-on";
      case FullTracer: return "full-tracer";
    }
    return "?";
}

enum Workload
{
    Churn,
    GcMark,
};

struct RunStats
{
    uint64_t wallNs = 0;
    uint64_t eventsAppended = 0; // flight-on only
};

RunStats
runOnce(Workload w, Mode mode, int a, int b)
{
    rt::Config rc;
    rc.seed = 1;
    rc.obs.enabled = mode == FlightOn;
    if (w == GcMark)
        rc.heap.minTriggerBytes = 1ull << 30; // only forced GCs
    rt::Runtime rt(rc);
    if (mode == FullTracer)
        rt.tracer().enable();

    const auto t0 = std::chrono::steady_clock::now();
    rt::RunResult rr = w == Churn
        ? rt.runMain(churnMain, &rt, a, b)
        : rt.runMain(markMain, &rt, a, b);
    const auto t1 = std::chrono::steady_clock::now();
    if (!rr.ok()) {
        std::fprintf(stderr, "FAIL %s run panicked: %s\n",
                     modeName(mode), rr.panicMessage.c_str());
        std::exit(1);
    }

    if (mode == ObsOff) {
        // Structural form of the "one branch per event" contract:
        // with obs off and the tracer disarmed the runtime holds no
        // telemetry sinks at all, so emitEvent() can only take its
        // single eventsArmed_ test-and-skip.
        if (rt.obs() != nullptr || rt.tracer().enabled() ||
            !rt.tracer().records().empty()) {
            std::fprintf(stderr,
                         "FAIL obs-off run is not bare: obs=%p "
                         "tracer=%d records=%zu\n",
                         static_cast<void*>(rt.obs()),
                         rt.tracer().enabled() ? 1 : 0,
                         rt.tracer().records().size());
            std::exit(1);
        }
    }

    RunStats s;
    s.wallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (mode == FlightOn && rt.obs() && rt.obs()->flight())
        s.eventsAppended = rt.obs()->flight()->appended();
    if (mode == FullTracer &&
        rt.tracer().records().size() + rt.tracer().dropped() == 0) {
        std::fprintf(stderr, "FAIL full-tracer recorded nothing\n");
        std::exit(1);
    }
    return s;
}

uint64_t
median(std::vector<uint64_t> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

struct WorkloadResult
{
    uint64_t medianWallNs[3] = {0, 0, 0};
    uint64_t events = 0; // flight-on appended count
};

WorkloadResult
runWorkload(Workload w, const char* name, int a, int b, int repeats)
{
    // Warm up allocators and page cache once per mode.
    for (Mode m : {ObsOff, FlightOn, FullTracer})
        runOnce(w, m, a / 2 + 1, b);

    std::vector<uint64_t> wall[3];
    WorkloadResult res;
    for (int i = 0; i < repeats; ++i) {
        for (Mode m : {ObsOff, FlightOn, FullTracer}) {
            RunStats s = runOnce(w, m, a, b);
            wall[m].push_back(s.wallNs);
            if (m == FlightOn)
                res.events = s.eventsAppended;
        }
        std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, "\n");
    for (Mode m : {ObsOff, FlightOn, FullTracer}) {
        res.medianWallNs[m] = median(wall[m]);
        std::printf("  %-8s %-12s median %8.3f ms\n", name,
                    modeName(m),
                    static_cast<double>(res.medianWallNs[m]) / 1e6);
    }
    return res;
}

double
ratioVsOff(const WorkloadResult& r, Mode m)
{
    // Throughput ratio = inverse wall-time ratio.
    return static_cast<double>(r.medianWallNs[ObsOff]) /
           static_cast<double>(r.medianWallNs[m]);
}

} // namespace

int
main(int argc, char** argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const int rounds =
        bench::envInt("GOLF_OBS_ROUNDS", smoke ? 60 : 100);
    const int spawns = bench::envInt("GOLF_OBS_SPAWNS", 500);
    const int nodes = bench::envInt("GOLF_OBS_NODES", 200000);
    const int cycles =
        bench::envInt("GOLF_OBS_CYCLES", smoke ? 25 : 40);
    const int repeats =
        bench::envInt("GOLF_OBS_REPEATS", smoke ? 5 : 7);

    std::printf("obs_overhead: churn %d rounds x %d spawns, gc-mark "
                "%d nodes x %d cycles, %d repeats per mode\n",
                rounds, spawns, nodes, cycles, repeats);

    const WorkloadResult churn =
        runWorkload(Churn, "churn", rounds, spawns, repeats);
    const WorkloadResult mark =
        runWorkload(GcMark, "gc-mark", nodes, cycles, repeats);

    double churnEps[3];
    for (Mode m : {ObsOff, FlightOn, FullTracer})
        churnEps[m] =
            static_cast<double>(churn.events) /
            (static_cast<double>(churn.medianWallNs[m]) / 1e9);
    const double churnFlight = ratioVsOff(churn, FlightOn);
    const double churnTracer = ratioVsOff(churn, FullTracer);
    const double markFlight = ratioVsOff(mark, FlightOn);
    const double markTracer = ratioVsOff(mark, FullTracer);
    std::printf("  churn:   %.0f events/run; flight-on/off %.3f, "
                "full-tracer/off %.3f\n",
                static_cast<double>(churn.events), churnFlight,
                churnTracer);
    std::printf("  gc-mark: flight-on/off %.3f, full-tracer/off "
                "%.3f\n",
                markFlight, markTracer);

    const std::string path = bench::csvPath("BENCH_obs_overhead.json");
    std::ofstream out(path);
    out << "{\n  \"rounds\": " << rounds << ",\n  \"spawns\": "
        << spawns << ",\n  \"nodes\": " << nodes
        << ",\n  \"cycles\": " << cycles << ",\n  \"repeats\": "
        << repeats << ",\n  \"churn_events_per_run\": "
        << churn.events << ",\n  \"modes\": [\n";
    for (Mode m : {ObsOff, FlightOn, FullTracer}) {
        out << "    {\"mode\": \"" << modeName(m)
            << "\", \"churn_median_wall_ns\": "
            << churn.medianWallNs[m]
            << ", \"churn_events_per_sec\": " << churnEps[m]
            << ", \"gc_mark_median_wall_ns\": "
            << mark.medianWallNs[m] << "}"
            << (m == FullTracer ? "" : ",") << "\n";
    }
    out << "  ],\n  \"churn_flight_on_vs_off\": " << churnFlight
        << ",\n  \"churn_full_tracer_vs_off\": " << churnTracer
        << ",\n  \"gc_mark_flight_on_vs_off\": " << markFlight
        << ",\n  \"gc_mark_full_tracer_vs_off\": " << markTracer
        << "\n}\n";

    bool ok = true;
    if (!(markFlight >= 0.95)) {
        std::fprintf(stderr,
                     "FAIL flight-on gc-mark throughput %.1f%% of "
                     "obs-off (need >= 95%%)\n",
                     100 * markFlight);
        ok = false;
    }
    if (churn.events == 0) {
        std::fprintf(stderr, "FAIL no events recorded\n");
        ok = false;
    }
    std::printf("results: %s\n%s\n", path.c_str(),
                ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
