/**
 * @file
 * Regenerates Table 3: response latency and CPU utilization of the
 * production service with and without GOLF, over a 32-hour window
 * with diurnal traffic, metrics emitted every three virtual minutes
 * and reported as mean +- stddev of the per-window P50/P99.
 *
 * Expected shape: GOLF within noise of the baseline on all four
 * cells — the production overhead is negligible.
 *
 * Knobs: GOLF_HOURS (default 32), GOLF_RPS_X100 (default 150),
 * GOLF_SEED.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "service/workload.hpp"

namespace {

golf::service::ProductionResult
runOnce(golf::rt::GcMode mode, uint64_t seed, int hours, double rps)
{
    golf::service::ProductionConfig cfg;
    cfg.seed = seed;
    cfg.gcMode = mode;
    cfg.recovery = golf::rt::Recovery::Reclaim;
    cfg.duration = hours * golf::support::kHour;
    cfg.baseRps = rps;
    // A mildly leaky real service (it is the same deployment the
    // RQ1(c) experiment monitors).
    cfg.endpoints = {
        {0, 0.002, 0.10},
        {1, 0.002, 0.08},
        {2, 0.002, 0.07},
    };
    return golf::service::runProductionService(cfg);
}

} // namespace

int
main()
{
    namespace bench = golf::bench;
    const int hours = bench::envInt("GOLF_HOURS", 32);
    const double rps = bench::envInt("GOLF_RPS_X100", 150) / 100.0;
    const auto seed =
        static_cast<uint64_t>(bench::envInt("GOLF_SEED", 5));

    std::printf("Table 3: production service +- GOLF over %d hours "
                "(3-minute emission windows)\n\n", hours);

    auto base = runOnce(golf::rt::GcMode::Baseline, seed, hours, rps);
    auto gol = runOnce(golf::rt::GcMode::Golf, seed + 1, hours, rps);

    std::printf("%-8s %-10s %-24s %-22s\n", "", "", "Latency (ms)",
                "CPU Usage (%)");
    std::printf("%-8s %-10s %-24s %-22s\n", "P50", "Baseline",
                golf::service::meanPm(base.p50Samples).c_str(),
                golf::service::meanPm(base.cpuSamples).c_str());
    std::printf("%-8s %-10s %-24s %-22s\n", "", "GOLF",
                golf::service::meanPm(gol.p50Samples).c_str(),
                golf::service::meanPm(gol.cpuSamples).c_str());
    std::printf("%-8s %-10s %-24s\n", "P99", "Baseline",
                golf::service::meanPm(base.p99Samples).c_str());
    std::printf("%-8s %-10s %-24s\n", "", "GOLF",
                golf::service::meanPm(gol.p99Samples).c_str());

    std::printf("\nrequests served: baseline=%zu golf=%zu\n",
                base.requestsServed, gol.requestsServed);
    std::printf("partial deadlocks: baseline(GC-blind)=%zu "
                "golf=%zu (from %zu distinct errors)\n",
                base.deadlocksDetected, gol.deadlocksDetected,
                gol.dedupReports);

    std::ofstream csv(bench::csvPath("table3.csv"));
    csv << "mode,p50_mean_ms,p50_std_ms,p99_mean_ms,p99_std_ms,"
           "cpu_mean_pct,cpu_std_pct\n";
    csv << "baseline," << base.p50Samples.mean() << ","
        << base.p50Samples.stddev() << "," << base.p99Samples.mean()
        << "," << base.p99Samples.stddev() << ","
        << base.cpuSamples.mean() << "," << base.cpuSamples.stddev()
        << "\n";
    csv << "golf," << gol.p50Samples.mean() << ","
        << gol.p50Samples.stddev() << "," << gol.p99Samples.mean()
        << "," << gol.p99Samples.stddev() << ","
        << gol.cpuSamples.mean() << "," << gol.cpuSamples.stddev()
        << "\n";
    std::printf("\nCSV written to %s\n",
                bench::csvPath("table3.csv").c_str());
    return 0;
}
