/**
 * @file
 * Regenerates Figure 4 (RQ2): slowdown of the GC marking phase under
 * GOLF relative to the Baseline GC, across the 105 microbenchmark
 * programs (73 deadlocking + 32 fixed), five repetitions each at one
 * virtual core, measuring the marking phase's CPU time per cycle —
 * the paper's methodology.
 *
 * Expected shape: for deadlocking programs GOLF's marking is usually
 * *faster* (median < 1x — the deadlocked subgraph is never marked);
 * for correct programs the median is ~1x with multi-x outliers in
 * both directions.
 *
 * Knobs: GOLF_RUNS (default 5), GOLF_SEED.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "support/stats.hpp"

namespace {

using namespace golf;
using namespace golf::microbench;

/** Average marking CPU microseconds per cycle over `runs` runs. */
double
markCpuUs(const Pattern& p, rt::GcMode mode, int runs, uint64_t seed)
{
    support::Samples perRun;
    for (int i = 0; i < runs; ++i) {
        HarnessConfig cfg;
        cfg.procs = 1;
        cfg.seed = seed + static_cast<uint64_t>(i) * 7919;
        cfg.gcMode = mode;
        RunOutcome out = runPatternOnce(p, cfg);
        if (out.gcCycles > 0)
            perRun.add(out.avgMarkCpuUs);
    }
    return perRun.mean();
}

} // namespace

int
main()
{
    namespace bench = golf::bench;
    const int runs = bench::envInt("GOLF_RUNS", 5);
    const auto seed =
        static_cast<uint64_t>(bench::envInt("GOLF_SEED", 21));

    Registry& reg = Registry::instance();
    support::Samples slowdownCorrect, slowdownDeadlock;
    support::Samples absGolfCorrect, absGolfDeadlock;

    std::ofstream csv(bench::csvPath("fig4.csv"));
    csv << "program,kind,mark_cpu_us_baseline,mark_cpu_us_golf,"
           "slowdown\n";

    auto measure = [&](const Pattern& p) {
        double base = markCpuUs(p, rt::GcMode::Baseline, runs, seed);
        double gol = markCpuUs(p, rt::GcMode::Golf, runs, seed);
        if (base <= 0 || gol <= 0)
            return;
        double slowdown = gol / base;
        if (p.correct) {
            slowdownCorrect.add(slowdown);
            absGolfCorrect.add(gol);
        } else {
            slowdownDeadlock.add(slowdown);
            absGolfDeadlock.add(gol);
        }
        csv << p.name << "," << (p.correct ? "correct" : "deadlock")
            << "," << base << "," << gol << "," << slowdown << "\n";
    };

    for (const Pattern& p : reg.all()) {
        measure(p);
        std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, "\n");

    std::printf("Figure 4 (RQ2): GC marking-phase slowdown, GOLF vs "
                "Baseline (%d runs each, 1 core, CPU time)\n\n",
                runs);
    std::printf("deadlocking programs (%zu):\n  slowdown %s\n",
                slowdownDeadlock.count(),
                support::BoxStats::of(slowdownDeadlock).str().c_str());
    std::printf("  GOLF marking per cycle: median %.1f us, "
                "max %.1f us\n\n",
                absGolfDeadlock.median(), absGolfDeadlock.max());
    std::printf("correct programs (%zu):\n  slowdown %s\n",
                slowdownCorrect.count(),
                support::BoxStats::of(slowdownCorrect).str().c_str());
    std::printf("  GOLF marking per cycle: median %.1f us, "
                "max %.1f us\n",
                absGolfCorrect.median(), absGolfCorrect.max());

    std::printf("\nCSV written to %s\n",
                bench::csvPath("fig4.csv").c_str());
    return 0;
}
