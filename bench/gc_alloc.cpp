/**
 * @file
 * Allocator throughput sweep: alloc-only and steady-state churn
 * (allocate / drop half / collect / refill) rates for the pool
 * backend vs the legacy one-new-per-object backend, emitted as
 * BENCH_alloc.json.
 *
 * The sweep doubles as a correctness smoke: both backends run the
 * identical seeded workload and must finish with byte-identical
 * MemStats accounting (heapAlloc / heapObjects / totalAlloc /
 * totalFreed / numGC) and the same per-cycle freed counts — the
 * DESIGN.md §13 transparency contract — and the run exits non-zero
 * on any mismatch, which is how the `bench_alloc_smoke` ctest wires
 * it into tier-1. The throughput gate is deliberately loose (pool
 * must stay within 2x of legacy on churn) because the differential
 * suite, not this bench, is the correctness authority; the JSON
 * records the real ratio for the curious.
 *
 * Usage:
 *   gc_alloc [--smoke]
 * Environment:
 *   GOLF_ALLOC_OBJS   objects per wave   (default 200000; smoke 40000)
 *   GOLF_ALLOC_WAVES  churn waves        (default 8; smoke 4)
 *   GOLF_RESULTS_DIR  where the JSON goes (default .)
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gc/heap.hpp"
#include "gc/marker.hpp"
#include "support/rng.hpp"

namespace {

using namespace golf;

/** Padded managed objects covering four size classes + one large. */
template <size_t N>
struct Blob final : gc::Object
{
    unsigned char pad[N];
    void trace(gc::Marker&) override {}
    const char* objectName() const override { return "bench-blob"; }
};

gc::Object*
makeSized(gc::Heap& heap, uint64_t roll)
{
    switch (roll % 16) {
    case 0:
        return heap.make<Blob<200>>();
    case 1:
    case 2:
        return heap.make<Blob<1000>>();
    case 3:
        return heap.make<Blob<6000>>(); // large path
    default:
        break;
    }
    return heap.make<Blob<40>>();
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct BackendResult
{
    uint64_t allocNs = 0;       ///< First-wave allocation time.
    uint64_t churnNs = 0;       ///< All subsequent waves.
    uint64_t churnedObjects = 0;///< Frees + refills timed in churnNs.
    double allocPerSec = 0.0;
    double churnPerSec = 0.0;
    std::vector<size_t> freedPerCycle;
    gc::MemStats finalStats;
    uint64_t liveObjects = 0;
    gc::PoolStats pool;
};

/** Mark every rooted object with a serial marker, then sweep. */
size_t
collect(gc::Heap& heap, const std::vector<gc::Object*>& roots)
{
    gc::Marker m = heap.beginCycle();
    for (gc::Object* o : roots)
        m.mark(o);
    m.drain();
    return heap.sweep(m);
}

BackendResult
runBackend(gc::AllocBackend backend, size_t objs, int waves)
{
    gc::HeapConfig hc;
    hc.backend = backend;
    // Pacing off the table: the bench drives collection manually so
    // both backends see the identical cycle schedule.
    hc.minTriggerBytes = ~uint64_t{0} >> 1;
    gc::Heap heap(hc);
    support::Rng rng(20260809);

    BackendResult r;
    std::vector<gc::Object*> live;
    live.reserve(objs);

    uint64_t t0 = nowNs();
    for (size_t i = 0; i < objs; ++i)
        live.push_back(makeSized(heap, rng.next()));
    r.allocNs = nowNs() - t0;

    t0 = nowNs();
    for (int wave = 0; wave < waves; ++wave) {
        // Drop a seeded half, compact, collect, refill. Under the
        // pool backend the refill is what exercises lazy sweep:
        // pending spans reintegrate on the allocation path.
        size_t kept = 0;
        for (size_t i = 0; i < live.size(); ++i) {
            if (rng.next() & 1)
                live[kept++] = live[i];
        }
        const size_t dropped = live.size() - kept;
        live.resize(kept);
        r.freedPerCycle.push_back(collect(heap, live));
        for (size_t i = 0; i < dropped; ++i)
            live.push_back(makeSized(heap, rng.next()));
        r.churnedObjects += 2 * dropped;
    }
    r.churnNs = nowNs() - t0;

    r.allocPerSec = r.allocNs == 0
        ? 0.0
        : static_cast<double>(objs) * 1e9 /
          static_cast<double>(r.allocNs);
    r.churnPerSec = r.churnNs == 0
        ? 0.0
        : static_cast<double>(r.churnedObjects) * 1e9 /
          static_cast<double>(r.churnNs);
    r.finalStats = heap.stats();
    r.liveObjects = heap.liveObjects();
    r.pool = heap.poolStats();
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    const size_t objs = static_cast<size_t>(
        bench::envInt("GOLF_ALLOC_OBJS", smoke ? 40000 : 200000));
    const int waves = bench::envInt("GOLF_ALLOC_WAVES", smoke ? 4 : 8);

    const BackendResult pool =
        runBackend(gc::AllocBackend::Pool, objs, waves);
    const BackendResult legacy =
        runBackend(gc::AllocBackend::Legacy, objs, waves);

    // Differential: identical workload, identical accounting.
    bool ok = true;
    auto check = [&](const char* what, uint64_t a, uint64_t b) {
        if (a != b) {
            std::fprintf(stderr,
                         "MISMATCH %s: pool=%llu legacy=%llu\n", what,
                         static_cast<unsigned long long>(a),
                         static_cast<unsigned long long>(b));
            ok = false;
        }
    };
    check("heapAlloc", pool.finalStats.heapAlloc,
          legacy.finalStats.heapAlloc);
    check("heapObjects", pool.finalStats.heapObjects,
          legacy.finalStats.heapObjects);
    check("totalAlloc", pool.finalStats.totalAlloc,
          legacy.finalStats.totalAlloc);
    check("totalFreed", pool.finalStats.totalFreed,
          legacy.finalStats.totalFreed);
    check("numGC", pool.finalStats.numGC, legacy.finalStats.numGC);
    check("liveObjects", pool.liveObjects, legacy.liveObjects);
    if (pool.freedPerCycle != legacy.freedPerCycle) {
        std::fprintf(stderr, "MISMATCH freedPerCycle\n");
        ok = false;
    }

    const double churnRatio = legacy.churnPerSec == 0.0
        ? 0.0
        : pool.churnPerSec / legacy.churnPerSec;
    // Loose floor: catches an accidental O(n) slow path on the pool
    // allocator without turning host noise into tier-1 flakes.
    const bool perfOk = churnRatio >= 0.5;
    if (!perfOk) {
        std::fprintf(stderr,
                     "PERF GATE FAILED: pool churn %.2fx legacy "
                     "(floor 0.5x)\n",
                     churnRatio);
    }

    std::printf("gc_alloc: %zu objects/wave, %d waves%s\n", objs,
                waves, smoke ? " (smoke)" : "");
    std::printf("  pool    alloc=%10.0f objs/s  churn=%10.0f objs/s  "
                "(spans=%llu recycled=%llu lazy=%llu drain=%llu)\n",
                pool.allocPerSec, pool.churnPerSec,
                static_cast<unsigned long long>(pool.pool.spans),
                static_cast<unsigned long long>(
                    pool.pool.slotsRecycled),
                static_cast<unsigned long long>(
                    pool.pool.lazySweptSpans),
                static_cast<unsigned long long>(
                    pool.pool.drainSweptSpans));
    std::printf("  legacy  alloc=%10.0f objs/s  churn=%10.0f objs/s\n",
                legacy.allocPerSec, legacy.churnPerSec);
    std::printf("  pool/legacy churn ratio: %.2fx\n", churnRatio);

    const std::string path = bench::csvPath("BENCH_alloc.json");
    std::ofstream js(path);
    js << "{\n"
       << "  \"bench\": \"gc_alloc\",\n"
       << "  \"objects_per_wave\": " << objs << ",\n"
       << "  \"waves\": " << waves << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"pool\": {\"alloc_per_sec\": "
       << static_cast<uint64_t>(pool.allocPerSec)
       << ", \"churn_per_sec\": "
       << static_cast<uint64_t>(pool.churnPerSec)
       << ", \"spans\": " << pool.pool.spans
       << ", \"slot_allocs\": " << pool.pool.slotAllocs
       << ", \"slots_recycled\": " << pool.pool.slotsRecycled
       << ", \"lazy_swept_spans\": " << pool.pool.lazySweptSpans
       << ", \"drain_swept_spans\": " << pool.pool.drainSweptSpans
       << "},\n"
       << "  \"legacy\": {\"alloc_per_sec\": "
       << static_cast<uint64_t>(legacy.allocPerSec)
       << ", \"churn_per_sec\": "
       << static_cast<uint64_t>(legacy.churnPerSec) << "},\n"
       << "  \"pool_vs_legacy_churn\": " << churnRatio << ",\n"
       << "  \"differential_ok\": " << (ok ? "true" : "false") << ",\n"
       << "  \"perf_ok\": " << (perfOk ? "true" : "false") << "\n"
       << "}\n";
    js.close();
    std::printf("wrote %s\n", path.c_str());

    return ok && perfOk ? 0 : 1;
}
